//! Self-monitoring integration: every long-running component serves its own
//! `/metrics` in the stack's text exposition format, query traces flow
//! end-to-end through the load balancer, and the slow-query log fires with
//! threshold exactness. This is the observability counterpart of
//! `full_stack_http.rs` — same Fig. 1 wiring, but the assertions are about
//! the stack watching itself rather than the workload.

use std::sync::Arc;

use ceems::core::config::{AlertingSettings, MetaSettings, ObsSettings};
use ceems::http::{Client, HttpServer, Response, Router, ServerConfig};
use ceems::lb::acl::Authorizer;
use ceems::lb::proxy::LbConfig;
use ceems::lb::{Backend, BackendPool, CeemsLb, Strategy};
use ceems::metrics::matcher::LabelMatcher;
use ceems::metrics::{
    encode_families, parse_text, Metric, MetricFamily, MetricType, ParsedScrape, Sample,
};
use ceems::obs::http::TRACE_STORED_HEADER;
use ceems::obs::slowlog::SlowQueryLog;
use ceems::obs::TRACE_HEADER;
use ceems::prelude::*;
use ceems::tsdb::httpapi::api_router_with;
use parking_lot::Mutex;

/// Builds a small busy deployment: one CPU job, 5 simulated minutes.
fn busy_stack() -> CeemsStack {
    let mut stack = CeemsStack::build_default();
    stack
        .submit(JobRequest {
            user: "alice".into(),
            account: "proj".into(),
            partition: "cpu-intel".into(),
            nodes: 1,
            cores_per_node: 16,
            memory_per_node: 32 << 30,
            gpus_per_node: 0,
            walltime_s: 7200,
            workload: WorkloadProfile::CpuBound { intensity: 0.9 },
        })
        .unwrap();
    stack.run_for(300.0, 15.0);
    stack
}

/// Builds a stack from an explicit config in a fresh temp DB dir.
fn stack_with(cfg: CeemsConfig) -> CeemsStack {
    let dir = std::env::temp_dir().join(format!(
        "ceems-obs-it-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    CeemsStack::build(cfg, &dir).expect("stack builds")
}

fn scrape(base_url: String) -> String {
    Client::new()
        .get(&format!("{base_url}/metrics"))
        .unwrap()
        .body_string()
}

fn has_sample(parsed: &ParsedScrape, name: &str) -> bool {
    parsed.samples.iter().any(|s| s.name == name)
}

/// Lossless parse → re-encode → re-parse round trip: the samples scraped off
/// a live endpoint survive a pass through our own encoder unchanged.
fn assert_roundtrip(component: &str, text: &str) -> ParsedScrape {
    let parsed = parse_text(text)
        .unwrap_or_else(|e| panic!("{component} /metrics does not parse: {e}\n{text}"));
    assert!(
        !parsed.samples.is_empty(),
        "{component} /metrics served no samples"
    );
    let families: Vec<MetricFamily> = parsed
        .samples
        .iter()
        .map(|s| {
            let mut fam = MetricFamily::new(s.name.clone(), "roundtrip", MetricType::Gauge);
            let sample = match s.timestamp_ms {
                Some(ts) => Sample::at(s.value, ts),
                None => Sample::now(s.value),
            };
            fam.metrics.push(Metric::new(s.labels.clone(), sample));
            fam
        })
        .collect();
    let reencoded = encode_families(&families);
    let reparsed = parse_text(&reencoded)
        .unwrap_or_else(|e| panic!("{component} re-encoded text does not parse: {e}"));
    assert_eq!(
        parsed.samples.len(),
        reparsed.samples.len(),
        "{component} round trip changed sample count"
    );
    for (a, b) in parsed.samples.iter().zip(reparsed.samples.iter()) {
        assert_eq!(a.name, b.name, "{component} round trip changed a name");
        assert_eq!(a.labels, b.labels, "{component} round trip changed labels");
        assert_eq!(
            a.value.to_bits(),
            b.value.to_bits(),
            "{component} round trip changed value of {}",
            a.name
        );
        assert_eq!(
            a.timestamp_ms, b.timestamp_ms,
            "{component} round trip changed timestamp of {}",
            a.name
        );
    }
    parsed
}

/// Satellites 3 + 6: every component's `/metrics` parses, round-trips through
/// the encoder losslessly, and carries its pinned metric families. The CI
/// smoke step runs exactly this test.
#[test]
fn every_component_serves_parseable_metrics() {
    let stack = busy_stack();

    // TSDB HTTP API with the stack-derived registry (incl. rule-eval timings).
    let now = stack.clock.now_ms();
    let tsdb_srv = HttpServer::serve(
        ServerConfig::ephemeral(),
        api_router_with(stack.tsdb.clone(), stack.tsdb_api_options(Arc::new(move || now))),
    )
    .unwrap();

    // Query frontend between the LB and the TSDB.
    let fe = ceems::qfe::QueryFrontend::new(
        Arc::new(ceems::qfe::HttpDownstream::new(vec![tsdb_srv.base_url()])),
        stack.qfe_config(Arc::new(move || now)),
    );
    let fe_srv = fe.serve().unwrap();

    // LB in front of the frontend, DB-backed ACL.
    let lb = Arc::new(CeemsLb::new(
        BackendPool::new(
            vec![Backend::new("b1", tsdb_srv.base_url())],
            Strategy::round_robin(),
        ),
        Authorizer::DirectDb(stack.updater.clone()),
        LbConfig {
            admin_users: vec!["op".into()],
            query_frontend: Some(fe_srv.base_url()),
            trace_sink: None,
        },
    ));
    let lb_srv = lb.serve().unwrap();

    // API server sharing the updater.
    let api_server = Arc::new(ceems::apiserver::ApiServer::new(
        stack.updater.clone(),
        vec!["op".into()],
    ));
    let api_srv = api_server.serve().unwrap();

    // One exporter over HTTP.
    let exp_srv = stack.exporters[0].clone().serve().unwrap();

    // Generate traffic so request-path instruments have observations:
    // a query through the LB (hits TSDB select + LB proxy), a unit listing
    // (hits the API server), and an exporter render.
    let query_url = format!(
        "{}/api/v1/query?query={}",
        lb_srv.base_url(),
        ceems::http::url::encode_component("uuid:ceems_power:watts{uuid=\"slurm-1\"}")
    );
    let resp = Client::new()
        .with_header("X-Grafana-User", "alice")
        .get(&query_url)
        .unwrap();
    assert_eq!(resp.status.0, 200, "body: {}", resp.body_string());
    assert_eq!(
        resp.header("x-ceems-lb-backend"),
        Some("qfe"),
        "query did not route through the frontend"
    );
    // A range query exercises the frontend's split/cache instruments.
    let range_url = format!(
        "{}/api/v1/query_range?query={}&start=0&end={}&step=15",
        lb_srv.base_url(),
        ceems::http::url::encode_component("uuid:ceems_power:watts{uuid=\"slurm-1\"}"),
        now / 1000,
    );
    let resp = Client::new()
        .with_header("X-Grafana-User", "alice")
        .get(&range_url)
        .unwrap();
    assert_eq!(resp.status.0, 200, "body: {}", resp.body_string());
    let resp = Client::new()
        .with_header("X-Grafana-User", "alice")
        .get(&format!("{}/api/v1/units", api_srv.base_url()))
        .unwrap();
    assert_eq!(resp.status.0, 200);
    let _ = scrape(exp_srv.base_url());

    // TSDB: ingest/select/WAL/rules/slow-query families.
    let tsdb = assert_roundtrip("tsdb", &scrape(tsdb_srv.base_url()));
    for family in [
        "ceems_tsdb_head_series",
        "ceems_tsdb_samples_appended_total",
        "ceems_tsdb_ingest_duration_seconds_count",
        "ceems_tsdb_select_duration_seconds_count",
        "ceems_tsdb_wal_enabled",
        "ceems_tsdb_rule_group_eval_duration_seconds_count",
        "ceems_tsdb_slow_queries_total",
    ] {
        assert!(has_sample(&tsdb, family), "tsdb /metrics missing {family}");
    }
    let select_count = tsdb
        .samples
        .iter()
        .find(|s| s.name == "ceems_tsdb_select_duration_seconds_count")
        .unwrap()
        .value;
    assert!(select_count >= 1.0, "no selects recorded after a query");

    // LB: proxy forwarding + its own HTTP server instruments.
    let lbm = assert_roundtrip("lb", &scrape(lb_srv.base_url()));
    for family in [
        "ceems_lb_proxy_requests_total",
        "ceems_lb_forward_duration_seconds_count",
        "ceems_lb_http_requests_total",
    ] {
        assert!(has_sample(&lbm, family), "lb /metrics missing {family}");
    }

    // Query frontend: split/cache/scheduler instruments + HTTP server stats.
    let qfe = assert_roundtrip("qfe", &scrape(fe_srv.base_url()));
    for family in [
        "ceems_qfe_cache_requests_total",
        "ceems_qfe_cached_steps_total",
        "ceems_qfe_fetched_steps_total",
        "ceems_qfe_split_subqueries_count",
        "ceems_qfe_shed_total",
        "ceems_qfe_downstream_fallback_total",
        "ceems_qfe_tenant_queue_depth",
        "ceems_qfe_cache_bytes",
        "ceems_qfe_http_requests_total",
    ] {
        assert!(has_sample(&qfe, family), "qfe /metrics missing {family}");
    }
    let fanout = qfe
        .samples
        .iter()
        .find(|s| s.name == "ceems_qfe_split_subqueries_count")
        .unwrap()
        .value;
    assert!(fanout >= 1.0, "no split fan-out recorded after a range query");

    // API server: request counts + latency by endpoint.
    let api = assert_roundtrip("apiserver", &scrape(api_srv.base_url()));
    for family in [
        "ceems_api_requests_total",
        "ceems_api_request_duration_seconds_count",
    ] {
        assert!(has_sample(&api, family), "api /metrics missing {family}");
    }
    assert!(
        api.samples.iter().any(|s| s.name == "ceems_api_requests_total"
            && s.labels.get("endpoint") == Some("/api/v1/units")
            && s.labels.get("code") == Some("200")
            && s.value >= 1.0),
        "api request counter missing the /api/v1/units hit"
    );

    // Exporter: E4 self-stats including the shared render histogram.
    let exp = assert_roundtrip("exporter", &scrape(exp_srv.base_url()));
    for family in [
        "ceems_exporter_scrapes_total",
        "ceems_exporter_render_duration_seconds_count",
    ] {
        assert!(has_sample(&exp, family), "exporter /metrics missing {family}");
    }

    exp_srv.shutdown();
    api_srv.shutdown();
    lb_srv.shutdown();
    fe_srv.shutdown();
    tsdb_srv.shutdown();
}

/// Satellite 4a: a trace ID injected at the edge survives LB → TSDB → PromQL
/// and comes back with a stage breakdown whose sum stays under the LB's
/// end-to-end total.
#[test]
fn trace_propagates_through_lb_to_tsdb() {
    let stack = busy_stack();
    let now = stack.clock.now_ms();
    let tsdb_srv = HttpServer::serve(
        ServerConfig::ephemeral(),
        api_router_with(stack.tsdb.clone(), stack.tsdb_api_options(Arc::new(move || now))),
    )
    .unwrap();
    let lb = Arc::new(CeemsLb::new(
        BackendPool::new(
            vec![Backend::new("b1", tsdb_srv.base_url())],
            Strategy::round_robin(),
        ),
        Authorizer::DirectDb(stack.updater.clone()),
        LbConfig {
            admin_users: vec!["op".into()],
            query_frontend: None,
            trace_sink: None,
        },
    ));
    let lb_srv = lb.serve().unwrap();

    let end_s = now as f64 / 1000.0;
    let url = format!(
        "{}/api/v1/query_range?query={}&start=0&end={end_s}&step=15&trace=1",
        lb_srv.base_url(),
        ceems::http::url::encode_component("uuid:ceems_power:watts{uuid=\"slurm-1\"}")
    );
    let resp = Client::new()
        .with_header("X-Grafana-User", "alice")
        .with_header(TRACE_HEADER, "0123456789abcdef")
        .get(&url)
        .unwrap();
    assert_eq!(resp.status.0, 200, "body: {}", resp.body_string());
    let v: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
    assert_eq!(v["status"], "success");

    let trace = &v["data"]["trace"];
    assert_eq!(
        trace["traceId"], "0123456789abcdef",
        "injected trace ID did not survive the proxy hop"
    );
    let stages = trace["stages"].as_array().expect("trace carries stages");
    let names: Vec<&str> = stages.iter().map(|s| s["name"].as_str().unwrap()).collect();
    for expected in ["parse", "eval", "lb_auth", "lb_forward"] {
        assert!(names.contains(&expected), "missing stage {expected}: {names:?}");
    }
    let total_ms = trace["totalMs"].as_f64().unwrap();
    let stage_sum: f64 = stages.iter().map(|s| s["ms"].as_f64().unwrap()).sum();
    assert!(
        stage_sum <= total_ms + 1e-6,
        "stage sum {stage_sum} exceeds end-to-end total {total_ms}"
    );
    assert!(trace["counts"]["series"].as_u64().is_some());

    // Without trace=1 the payload stays clean.
    let url_plain = format!(
        "{}/api/v1/query_range?query={}&start=0&end={end_s}&step=15",
        lb_srv.base_url(),
        ceems::http::url::encode_component("uuid:ceems_power:watts{uuid=\"slurm-1\"}")
    );
    let resp = Client::new()
        .with_header("X-Grafana-User", "alice")
        .get(&url_plain)
        .unwrap();
    let v: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
    assert_eq!(v["data"]["trace"], serde_json::Value::Null);

    lb_srv.shutdown();
    tsdb_srv.shutdown();
}

/// Satellite 4b: slow-query threshold exactness behind the LB — a microscopic
/// threshold logs exactly the queries that ran, a huge one logs nothing.
#[test]
fn slow_query_log_exactness_behind_lb() {
    let stack = busy_stack();
    let now = stack.clock.now_ms();
    let lines = Arc::new(Mutex::new(Vec::<String>::new()));

    let serve_with_threshold = |threshold_ms: f64| {
        let sink_lines = lines.clone();
        let mut opts = stack.tsdb_api_options(Arc::new(move || now));
        opts.slow_query = Some(
            SlowQueryLog::new(threshold_ms)
                .with_sink(move |l| sink_lines.lock().push(l.to_string())),
        );
        HttpServer::serve(
            ServerConfig::ephemeral(),
            api_router_with(stack.tsdb.clone(), opts),
        )
        .unwrap()
    };

    // A threshold every query crosses: exactly one line per query, carrying
    // the trace ID that entered at the LB.
    let tsdb_srv = serve_with_threshold(1e-9);
    let lb = Arc::new(CeemsLb::new(
        BackendPool::new(
            vec![Backend::new("b1", tsdb_srv.base_url())],
            Strategy::round_robin(),
        ),
        Authorizer::DirectDb(stack.updater.clone()),
        LbConfig {
            admin_users: vec!["op".into()],
            query_frontend: None,
            trace_sink: None,
        },
    ));
    let lb_srv = lb.serve().unwrap();
    let resp = Client::new()
        .with_header("X-Grafana-User", "alice")
        .with_header(TRACE_HEADER, "deadbeefdeadbeef")
        .get(&format!(
            "{}/api/v1/query?query={}",
            lb_srv.base_url(),
            ceems::http::url::encode_component("uuid:ceems_power:watts{uuid=\"slurm-1\"}")
        ))
        .unwrap();
    assert_eq!(resp.status.0, 200);
    {
        let captured = lines.lock();
        assert_eq!(captured.len(), 1, "expected exactly one slow line: {captured:?}");
        assert!(
            captured[0].starts_with("slow_query component=tsdb endpoint=/api/v1/query "),
            "bad line shape: {}",
            captured[0]
        );
        assert!(
            captured[0].contains("trace_id=deadbeefdeadbeef"),
            "slow line lost the trace ID: {}",
            captured[0]
        );
        assert!(
            captured[0].ends_with("query=\"uuid:ceems_power:watts{uuid=\\\"slurm-1\\\"}\""),
            "slow line lost the query text: {}",
            captured[0]
        );
    }
    lb_srv.shutdown();
    tsdb_srv.shutdown();
    lines.lock().clear();

    // A threshold nothing crosses: same traffic, zero lines.
    let quiet_srv = serve_with_threshold(1e12);
    let resp = Client::new()
        .get(&format!(
            "{}/api/v1/query?query={}",
            quiet_srv.base_url(),
            ceems::http::url::encode_component("uuid:ceems_power:watts{uuid=\"slurm-1\"}")
        ))
        .unwrap();
    assert_eq!(resp.status.0, 200);
    assert!(
        lines.lock().is_empty(),
        "slow-query log fired under a huge threshold: {:?}",
        lines.lock()
    );
    quiet_srv.shutdown();
}

/// S22 satellite 1: the stage clock starts at handler dispatch, not at
/// socket readability — on a pipelined keep-alive connection the queue delay
/// between requests must not leak into any request's stage accounting, so
/// `sum(stages) <= totalMs` holds for every request on the connection.
#[test]
fn stage_accounting_holds_on_pipelined_keepalive_connections() {
    let stack = busy_stack();
    let now = stack.clock.now_ms();
    let tsdb_srv = HttpServer::serve(
        ServerConfig::ephemeral(),
        api_router_with(stack.tsdb.clone(), stack.tsdb_api_options(Arc::new(move || now))),
    )
    .unwrap();
    let lb = Arc::new(CeemsLb::new(
        BackendPool::new(
            vec![Backend::new("b1", tsdb_srv.base_url())],
            Strategy::round_robin(),
        ),
        Authorizer::DirectDb(stack.updater.clone()),
        LbConfig {
            admin_users: vec!["op".into()],
            query_frontend: None,
            trace_sink: None,
        },
    ));
    let lb_srv = lb.serve().unwrap();

    // One pooled connection, reused for every request in the burst.
    let client = Client::new().with_pool_per_host(1);
    let end_s = now as f64 / 1000.0;
    for i in 0..10 {
        let url = format!(
            "{}/api/v1/query_range?query={}&start=0&end={end_s}&step=15&trace=1",
            lb_srv.base_url(),
            ceems::http::url::encode_component("uuid:ceems_power:watts{uuid=\"slurm-1\"}")
        );
        let resp = client
            .clone()
            .with_header("X-Grafana-User", "alice")
            .with_header(TRACE_HEADER, format!("{i:016x}"))
            .get(&url)
            .unwrap();
        assert_eq!(resp.status.0, 200);
        let v: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
        let trace = &v["data"]["trace"];
        assert_eq!(trace["traceId"], format!("{i:016x}"));
        let total_ms = trace["totalMs"].as_f64().unwrap();
        let stage_sum: f64 = trace["stages"]
            .as_array()
            .unwrap()
            .iter()
            .map(|s| s["ms"].as_f64().unwrap())
            .sum();
        assert!(
            stage_sum <= total_ms + 1e-6,
            "request {i}: stage sum {stage_sum} exceeds total {total_ms} on a keep-alive connection"
        );
    }
    lb_srv.shutdown();
    tsdb_srv.shutdown();
}

/// S22 satellite 3a: meta self-scrape round trip — metrics ingested into the
/// `__ceems_meta__` tenant and re-queried via PromQL are value-identical to
/// a direct parse of the component's exposition text.
#[test]
fn meta_self_scrape_round_trips_through_promql() {
    let mut stack = stack_with(CeemsConfig {
        meta: MetaSettings {
            enabled: true,
            scrape_interval_s: 15.0,
            ..Default::default()
        },
        ..Default::default()
    });
    const BODY: &str = "\
# TYPE demo_requests_total counter
demo_requests_total{path=\"/a\"} 41
demo_requests_total{path=\"/b\"} 1.5
";
    stack.register_meta_render("custom", "custom:0", Arc::new(|| BODY.to_string()));
    stack.run_for(60.0, 15.0);
    assert!(stack.stats().meta_passes >= 3);
    assert_eq!(stack.stats().meta_failures, 0);

    let now = stack.clock.now_ms();
    let tsdb_srv = HttpServer::serve(
        ServerConfig::ephemeral(),
        api_router_with(stack.tsdb.clone(), stack.tsdb_api_options(Arc::new(move || now))),
    )
    .unwrap();
    let query = |expr: &str| -> serde_json::Value {
        let resp = Client::new()
            .get(&format!(
                "{}/api/v1/query?query={}",
                tsdb_srv.base_url(),
                ceems::http::url::encode_component(expr)
            ))
            .unwrap();
        assert_eq!(resp.status.0, 200, "body: {}", resp.body_string());
        serde_json::from_slice(&resp.body).unwrap()
    };

    // Every sample of the direct parse comes back through PromQL with the
    // exact same value, now carrying the meta-tenant target labels.
    let direct = parse_text(BODY).unwrap();
    let v = query("demo_requests_total{component=\"custom\"}");
    let result = v["data"]["result"].as_array().unwrap();
    assert_eq!(result.len(), direct.samples.len());
    for s in &direct.samples {
        let path = s.labels.get("path").unwrap();
        let m = result
            .iter()
            .find(|r| r["metric"]["path"] == path)
            .unwrap_or_else(|| panic!("PromQL lost the series with path={path}"));
        assert_eq!(m["metric"]["tenant"], "__ceems_meta__");
        assert_eq!(m["metric"]["job"], "ceems-meta");
        let got: f64 = m["value"][1].as_str().unwrap().parse().unwrap();
        assert_eq!(
            got.to_bits(),
            s.value.to_bits(),
            "PromQL value for path={path} differs from the direct parse"
        );
    }

    // The synthetic health series and the TSDB's own build identity are
    // queryable the same way.
    let v = query("ceems_meta_up{component=\"custom\"}");
    assert_eq!(v["data"]["result"][0]["value"][1], "1");
    let v = query("ceems_build_info{component=\"tsdb\",tenant=\"__ceems_meta__\"}");
    assert_eq!(v["data"]["result"][0]["value"][1], "1");
    tsdb_srv.shutdown();
}

/// S22 satellite 3b: when a component dies, its `ceems_meta_up` drops to 0
/// within one scrape interval.
#[test]
fn meta_up_drops_within_one_interval_when_component_dies() {
    let mut stack = stack_with(CeemsConfig {
        meta: MetaSettings {
            enabled: true,
            scrape_interval_s: 15.0,
            ..Default::default()
        },
        ..Default::default()
    });
    let mut router = Router::new();
    router.get("/metrics", |_| Response::text("victim_metric 1\n"));
    let victim = HttpServer::serve(ServerConfig::ephemeral(), router).unwrap();
    stack.register_meta_target("victim", "victim:0", &format!("{}/metrics", victim.base_url()));

    stack.run_for(30.0, 15.0);
    let up = stack.tsdb.select_latest(&[
        LabelMatcher::eq("__name__", "ceems_meta_up"),
        LabelMatcher::eq("component", "victim"),
    ]);
    assert_eq!(up.len(), 1);
    assert_eq!(up[0].1.v, 1.0, "victim should start healthy");

    victim.shutdown();
    stack.run_for(15.0, 15.0);
    let up = stack.tsdb.select_latest(&[
        LabelMatcher::eq("__name__", "ceems_meta_up"),
        LabelMatcher::eq("component", "victim"),
    ]);
    assert_eq!(up[0].1.v, 0.0, "up did not drop within one interval");
    assert!(stack.stats().meta_failures >= 1);
}

/// The S22 acceptance demo, end to end under a fixed seed: self-scrape on,
/// always-on sampling stores a query's trace, the trace ID shows up as an
/// exemplar on the LB latency histogram, the apiserver serves the stage
/// breakdown for that ID, and killing a replica fires the meta alert pack.
#[test]
fn e2e_trace_exemplars_and_meta_alerting() {
    let mut stack = stack_with(CeemsConfig {
        obs: ObsSettings {
            trace_sample_rate: 1.0,
            ..Default::default()
        },
        meta: MetaSettings {
            enabled: true,
            scrape_interval_s: 15.0,
            ..Default::default()
        },
        alerting: AlertingSettings {
            enabled: true,
            eval_interval_s: 15.0,
            group_wait_s: 0.0,
            ..Default::default()
        },
        ..Default::default()
    });
    stack
        .submit(JobRequest {
            user: "alice".into(),
            account: "proj".into(),
            partition: "cpu-intel".into(),
            nodes: 1,
            cores_per_node: 16,
            memory_per_node: 32 << 30,
            gpus_per_node: 0,
            walltime_s: 7200,
            workload: WorkloadProfile::CpuBound { intensity: 0.9 },
        })
        .unwrap();
    stack.run_for(120.0, 15.0);

    let now = stack.clock.now_ms();
    let tsdb_srv = HttpServer::serve(
        ServerConfig::ephemeral(),
        api_router_with(stack.tsdb.clone(), stack.tsdb_api_options(Arc::new(move || now))),
    )
    .unwrap();
    // A "replica" whose only job is to die later.
    let mut rrouter = Router::new();
    rrouter.get("/metrics", |_| Response::text("replica_metric 1\n"));
    let replica = HttpServer::serve(ServerConfig::ephemeral(), rrouter).unwrap();

    let lb = Arc::new(CeemsLb::new(
        BackendPool::new(
            vec![Backend::new("b1", tsdb_srv.base_url())],
            Strategy::round_robin(),
        ),
        Authorizer::DirectDb(stack.updater.clone()),
        LbConfig {
            admin_users: vec!["op".into()],
            query_frontend: None,
            trace_sink: Some(stack.trace_sink()),
        },
    ));
    let lb_srv = lb.serve().unwrap();
    stack.register_meta_target("lb", "lb:0", &format!("{}/metrics", lb_srv.base_url()));
    stack.register_meta_target(
        "tsdb-replica",
        "replica:0",
        &format!("{}/metrics", replica.base_url()),
    );
    stack.run_for(30.0, 15.0);

    // Fire a query; at sample rate 1.0 its trace is always stored and the
    // response names the store key.
    let resp = Client::new()
        .with_header("X-Grafana-User", "alice")
        .get(&format!(
            "{}/api/v1/query?query={}",
            lb_srv.base_url(),
            ceems::http::url::encode_component("uuid:ceems_power:watts{uuid=\"slurm-1\"}")
        ))
        .unwrap();
    assert_eq!(resp.status.0, 200, "body: {}", resp.body_string());
    let stored_id = resp
        .header(TRACE_STORED_HEADER)
        .expect("rate-1.0 sampling must store the trace")
        .to_string();

    // The stored trace ID rides the LB latency histogram as an OpenMetrics
    // exemplar.
    let lbm_text = scrape(lb_srv.base_url());
    let ex_line = lbm_text
        .lines()
        .find(|l| {
            l.starts_with("ceems_lb_forward_duration_seconds_bucket") && l.contains("# {trace_id=")
        })
        .unwrap_or_else(|| panic!("no exemplar on the forward histogram:\n{lbm_text}"));
    assert!(
        ex_line.contains(&format!("trace_id=\"{stored_id}\"")),
        "exemplar does not carry the stored trace ID: {ex_line}"
    );

    // The apiserver serves the stage breakdown for that ID: one span per
    // hop, both keyed by the same trace.
    let api_server = Arc::new(
        ceems::apiserver::ApiServer::new(stack.updater.clone(), vec!["op".into()])
            .with_trace_store(stack.trace_store()),
    );
    let api_srv = api_server.serve().unwrap();
    let resp = Client::new()
        .with_header("X-Grafana-User", "op")
        .get(&format!("{}/api/v1/traces/{stored_id}", api_srv.base_url()))
        .unwrap();
    assert_eq!(resp.status.0, 200, "body: {}", resp.body_string());
    let doc: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
    assert_eq!(doc["traceId"], stored_id.as_str());
    let spans = doc["spans"].as_array().unwrap();
    let components: Vec<&str> = spans
        .iter()
        .map(|s| s["component"].as_str().unwrap())
        .collect();
    assert!(components.contains(&"lb"), "spans: {components:?}");
    assert!(components.contains(&"tsdb"), "spans: {components:?}");
    let lb_span = spans.iter().find(|s| s["component"] == "lb").unwrap();
    let stage_names: Vec<&str> = lb_span["report"]["stages"]
        .as_array()
        .unwrap()
        .iter()
        .map(|s| s["name"].as_str().unwrap())
        .collect();
    assert!(stage_names.contains(&"lb_forward"), "stages: {stage_names:?}");
    // The list endpoint filters by endpoint.
    let resp = Client::new()
        .with_header("X-Grafana-User", "op")
        .get(&format!(
            "{}/api/v1/traces?endpoint=/api/v1/query",
            api_srv.base_url()
        ))
        .unwrap();
    assert_eq!(resp.status.0, 200);
    let listing: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
    assert!(
        listing["traces"]
            .as_array()
            .unwrap()
            .iter()
            .any(|t| t["traceId"] == stored_id.as_str()),
        "stored trace missing from the listing: {listing}"
    );

    // Kill the replica: within one meta interval `ceems_meta_up` drops to 0
    // and the meta alert pack fires ComponentDown.
    replica.shutdown();
    stack.run_for(60.0, 15.0);
    let up = stack.tsdb.select_latest(&[
        LabelMatcher::eq("__name__", "ceems_meta_up"),
        LabelMatcher::eq("component", "tsdb-replica"),
    ]);
    assert_eq!(up[0].1.v, 0.0, "replica still reports up after shutdown");
    let lines = stack.alert_log.as_ref().unwrap().render_lines();
    assert!(
        lines.iter().any(|l| l.contains("ComponentDown")),
        "ComponentDown never fired: {lines:?}"
    );

    api_srv.shutdown();
    lb_srv.shutdown();
    tsdb_srv.shutdown();
}
