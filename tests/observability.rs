//! Self-monitoring integration: every long-running component serves its own
//! `/metrics` in the stack's text exposition format, query traces flow
//! end-to-end through the load balancer, and the slow-query log fires with
//! threshold exactness. This is the observability counterpart of
//! `full_stack_http.rs` — same Fig. 1 wiring, but the assertions are about
//! the stack watching itself rather than the workload.

use std::sync::Arc;

use ceems::http::{Client, HttpServer, ServerConfig};
use ceems::lb::acl::Authorizer;
use ceems::lb::proxy::LbConfig;
use ceems::lb::{Backend, BackendPool, CeemsLb, Strategy};
use ceems::metrics::{
    encode_families, parse_text, Metric, MetricFamily, MetricType, ParsedScrape, Sample,
};
use ceems::obs::slowlog::SlowQueryLog;
use ceems::obs::TRACE_HEADER;
use ceems::prelude::*;
use ceems::tsdb::httpapi::api_router_with;
use parking_lot::Mutex;

/// Builds a small busy deployment: one CPU job, 5 simulated minutes.
fn busy_stack() -> CeemsStack {
    let mut stack = CeemsStack::build_default();
    stack
        .submit(JobRequest {
            user: "alice".into(),
            account: "proj".into(),
            partition: "cpu-intel".into(),
            nodes: 1,
            cores_per_node: 16,
            memory_per_node: 32 << 30,
            gpus_per_node: 0,
            walltime_s: 7200,
            workload: WorkloadProfile::CpuBound { intensity: 0.9 },
        })
        .unwrap();
    stack.run_for(300.0, 15.0);
    stack
}

fn scrape(base_url: String) -> String {
    Client::new()
        .get(&format!("{base_url}/metrics"))
        .unwrap()
        .body_string()
}

fn has_sample(parsed: &ParsedScrape, name: &str) -> bool {
    parsed.samples.iter().any(|s| s.name == name)
}

/// Lossless parse → re-encode → re-parse round trip: the samples scraped off
/// a live endpoint survive a pass through our own encoder unchanged.
fn assert_roundtrip(component: &str, text: &str) -> ParsedScrape {
    let parsed = parse_text(text)
        .unwrap_or_else(|e| panic!("{component} /metrics does not parse: {e}\n{text}"));
    assert!(
        !parsed.samples.is_empty(),
        "{component} /metrics served no samples"
    );
    let families: Vec<MetricFamily> = parsed
        .samples
        .iter()
        .map(|s| {
            let mut fam = MetricFamily::new(s.name.clone(), "roundtrip", MetricType::Gauge);
            let sample = match s.timestamp_ms {
                Some(ts) => Sample::at(s.value, ts),
                None => Sample::now(s.value),
            };
            fam.metrics.push(Metric::new(s.labels.clone(), sample));
            fam
        })
        .collect();
    let reencoded = encode_families(&families);
    let reparsed = parse_text(&reencoded)
        .unwrap_or_else(|e| panic!("{component} re-encoded text does not parse: {e}"));
    assert_eq!(
        parsed.samples.len(),
        reparsed.samples.len(),
        "{component} round trip changed sample count"
    );
    for (a, b) in parsed.samples.iter().zip(reparsed.samples.iter()) {
        assert_eq!(a.name, b.name, "{component} round trip changed a name");
        assert_eq!(a.labels, b.labels, "{component} round trip changed labels");
        assert_eq!(
            a.value.to_bits(),
            b.value.to_bits(),
            "{component} round trip changed value of {}",
            a.name
        );
        assert_eq!(
            a.timestamp_ms, b.timestamp_ms,
            "{component} round trip changed timestamp of {}",
            a.name
        );
    }
    parsed
}

/// Satellites 3 + 6: every component's `/metrics` parses, round-trips through
/// the encoder losslessly, and carries its pinned metric families. The CI
/// smoke step runs exactly this test.
#[test]
fn every_component_serves_parseable_metrics() {
    let stack = busy_stack();

    // TSDB HTTP API with the stack-derived registry (incl. rule-eval timings).
    let now = stack.clock.now_ms();
    let tsdb_srv = HttpServer::serve(
        ServerConfig::ephemeral(),
        api_router_with(stack.tsdb.clone(), stack.tsdb_api_options(Arc::new(move || now))),
    )
    .unwrap();

    // Query frontend between the LB and the TSDB.
    let fe = ceems::qfe::QueryFrontend::new(
        Arc::new(ceems::qfe::HttpDownstream::new(vec![tsdb_srv.base_url()])),
        stack.qfe_config(Arc::new(move || now)),
    );
    let fe_srv = fe.serve().unwrap();

    // LB in front of the frontend, DB-backed ACL.
    let lb = Arc::new(CeemsLb::new(
        BackendPool::new(
            vec![Backend::new("b1", tsdb_srv.base_url())],
            Strategy::round_robin(),
        ),
        Authorizer::DirectDb(stack.updater.clone()),
        LbConfig {
            admin_users: vec!["op".into()],
            query_frontend: Some(fe_srv.base_url()),
        },
    ));
    let lb_srv = lb.serve().unwrap();

    // API server sharing the updater.
    let api_server = Arc::new(ceems::apiserver::ApiServer::new(
        stack.updater.clone(),
        vec!["op".into()],
    ));
    let api_srv = api_server.serve().unwrap();

    // One exporter over HTTP.
    let exp_srv = stack.exporters[0].clone().serve().unwrap();

    // Generate traffic so request-path instruments have observations:
    // a query through the LB (hits TSDB select + LB proxy), a unit listing
    // (hits the API server), and an exporter render.
    let query_url = format!(
        "{}/api/v1/query?query={}",
        lb_srv.base_url(),
        ceems::http::url::encode_component("uuid:ceems_power:watts{uuid=\"slurm-1\"}")
    );
    let resp = Client::new()
        .with_header("X-Grafana-User", "alice")
        .get(&query_url)
        .unwrap();
    assert_eq!(resp.status.0, 200, "body: {}", resp.body_string());
    assert_eq!(
        resp.header("x-ceems-lb-backend"),
        Some("qfe"),
        "query did not route through the frontend"
    );
    // A range query exercises the frontend's split/cache instruments.
    let range_url = format!(
        "{}/api/v1/query_range?query={}&start=0&end={}&step=15",
        lb_srv.base_url(),
        ceems::http::url::encode_component("uuid:ceems_power:watts{uuid=\"slurm-1\"}"),
        now / 1000,
    );
    let resp = Client::new()
        .with_header("X-Grafana-User", "alice")
        .get(&range_url)
        .unwrap();
    assert_eq!(resp.status.0, 200, "body: {}", resp.body_string());
    let resp = Client::new()
        .with_header("X-Grafana-User", "alice")
        .get(&format!("{}/api/v1/units", api_srv.base_url()))
        .unwrap();
    assert_eq!(resp.status.0, 200);
    let _ = scrape(exp_srv.base_url());

    // TSDB: ingest/select/WAL/rules/slow-query families.
    let tsdb = assert_roundtrip("tsdb", &scrape(tsdb_srv.base_url()));
    for family in [
        "ceems_tsdb_head_series",
        "ceems_tsdb_samples_appended_total",
        "ceems_tsdb_ingest_duration_seconds_count",
        "ceems_tsdb_select_duration_seconds_count",
        "ceems_tsdb_wal_enabled",
        "ceems_tsdb_rule_group_eval_duration_seconds_count",
        "ceems_tsdb_slow_queries_total",
    ] {
        assert!(has_sample(&tsdb, family), "tsdb /metrics missing {family}");
    }
    let select_count = tsdb
        .samples
        .iter()
        .find(|s| s.name == "ceems_tsdb_select_duration_seconds_count")
        .unwrap()
        .value;
    assert!(select_count >= 1.0, "no selects recorded after a query");

    // LB: proxy forwarding + its own HTTP server instruments.
    let lbm = assert_roundtrip("lb", &scrape(lb_srv.base_url()));
    for family in [
        "ceems_lb_proxy_requests_total",
        "ceems_lb_forward_duration_seconds_count",
        "ceems_lb_http_requests_total",
    ] {
        assert!(has_sample(&lbm, family), "lb /metrics missing {family}");
    }

    // Query frontend: split/cache/scheduler instruments + HTTP server stats.
    let qfe = assert_roundtrip("qfe", &scrape(fe_srv.base_url()));
    for family in [
        "ceems_qfe_cache_requests_total",
        "ceems_qfe_cached_steps_total",
        "ceems_qfe_fetched_steps_total",
        "ceems_qfe_split_subqueries_count",
        "ceems_qfe_shed_total",
        "ceems_qfe_downstream_fallback_total",
        "ceems_qfe_tenant_queue_depth",
        "ceems_qfe_cache_bytes",
        "ceems_qfe_http_requests_total",
    ] {
        assert!(has_sample(&qfe, family), "qfe /metrics missing {family}");
    }
    let fanout = qfe
        .samples
        .iter()
        .find(|s| s.name == "ceems_qfe_split_subqueries_count")
        .unwrap()
        .value;
    assert!(fanout >= 1.0, "no split fan-out recorded after a range query");

    // API server: request counts + latency by endpoint.
    let api = assert_roundtrip("apiserver", &scrape(api_srv.base_url()));
    for family in [
        "ceems_api_requests_total",
        "ceems_api_request_duration_seconds_count",
    ] {
        assert!(has_sample(&api, family), "api /metrics missing {family}");
    }
    assert!(
        api.samples.iter().any(|s| s.name == "ceems_api_requests_total"
            && s.labels.get("endpoint") == Some("/api/v1/units")
            && s.labels.get("code") == Some("200")
            && s.value >= 1.0),
        "api request counter missing the /api/v1/units hit"
    );

    // Exporter: E4 self-stats including the shared render histogram.
    let exp = assert_roundtrip("exporter", &scrape(exp_srv.base_url()));
    for family in [
        "ceems_exporter_scrapes_total",
        "ceems_exporter_render_duration_seconds_count",
    ] {
        assert!(has_sample(&exp, family), "exporter /metrics missing {family}");
    }

    exp_srv.shutdown();
    api_srv.shutdown();
    lb_srv.shutdown();
    fe_srv.shutdown();
    tsdb_srv.shutdown();
}

/// Satellite 4a: a trace ID injected at the edge survives LB → TSDB → PromQL
/// and comes back with a stage breakdown whose sum stays under the LB's
/// end-to-end total.
#[test]
fn trace_propagates_through_lb_to_tsdb() {
    let stack = busy_stack();
    let now = stack.clock.now_ms();
    let tsdb_srv = HttpServer::serve(
        ServerConfig::ephemeral(),
        api_router_with(stack.tsdb.clone(), stack.tsdb_api_options(Arc::new(move || now))),
    )
    .unwrap();
    let lb = Arc::new(CeemsLb::new(
        BackendPool::new(
            vec![Backend::new("b1", tsdb_srv.base_url())],
            Strategy::round_robin(),
        ),
        Authorizer::DirectDb(stack.updater.clone()),
        LbConfig {
            admin_users: vec!["op".into()],
            query_frontend: None,
        },
    ));
    let lb_srv = lb.serve().unwrap();

    let end_s = now as f64 / 1000.0;
    let url = format!(
        "{}/api/v1/query_range?query={}&start=0&end={end_s}&step=15&trace=1",
        lb_srv.base_url(),
        ceems::http::url::encode_component("uuid:ceems_power:watts{uuid=\"slurm-1\"}")
    );
    let resp = Client::new()
        .with_header("X-Grafana-User", "alice")
        .with_header(TRACE_HEADER, "0123456789abcdef")
        .get(&url)
        .unwrap();
    assert_eq!(resp.status.0, 200, "body: {}", resp.body_string());
    let v: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
    assert_eq!(v["status"], "success");

    let trace = &v["data"]["trace"];
    assert_eq!(
        trace["traceId"], "0123456789abcdef",
        "injected trace ID did not survive the proxy hop"
    );
    let stages = trace["stages"].as_array().expect("trace carries stages");
    let names: Vec<&str> = stages.iter().map(|s| s["name"].as_str().unwrap()).collect();
    for expected in ["parse", "eval", "lb_auth", "lb_forward"] {
        assert!(names.contains(&expected), "missing stage {expected}: {names:?}");
    }
    let total_ms = trace["totalMs"].as_f64().unwrap();
    let stage_sum: f64 = stages.iter().map(|s| s["ms"].as_f64().unwrap()).sum();
    assert!(
        stage_sum <= total_ms + 1e-6,
        "stage sum {stage_sum} exceeds end-to-end total {total_ms}"
    );
    assert!(trace["counts"]["series"].as_u64().is_some());

    // Without trace=1 the payload stays clean.
    let url_plain = format!(
        "{}/api/v1/query_range?query={}&start=0&end={end_s}&step=15",
        lb_srv.base_url(),
        ceems::http::url::encode_component("uuid:ceems_power:watts{uuid=\"slurm-1\"}")
    );
    let resp = Client::new()
        .with_header("X-Grafana-User", "alice")
        .get(&url_plain)
        .unwrap();
    let v: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
    assert_eq!(v["data"]["trace"], serde_json::Value::Null);

    lb_srv.shutdown();
    tsdb_srv.shutdown();
}

/// Satellite 4b: slow-query threshold exactness behind the LB — a microscopic
/// threshold logs exactly the queries that ran, a huge one logs nothing.
#[test]
fn slow_query_log_exactness_behind_lb() {
    let stack = busy_stack();
    let now = stack.clock.now_ms();
    let lines = Arc::new(Mutex::new(Vec::<String>::new()));

    let serve_with_threshold = |threshold_ms: f64| {
        let sink_lines = lines.clone();
        let mut opts = stack.tsdb_api_options(Arc::new(move || now));
        opts.slow_query = Some(
            SlowQueryLog::new(threshold_ms)
                .with_sink(move |l| sink_lines.lock().push(l.to_string())),
        );
        HttpServer::serve(
            ServerConfig::ephemeral(),
            api_router_with(stack.tsdb.clone(), opts),
        )
        .unwrap()
    };

    // A threshold every query crosses: exactly one line per query, carrying
    // the trace ID that entered at the LB.
    let tsdb_srv = serve_with_threshold(1e-9);
    let lb = Arc::new(CeemsLb::new(
        BackendPool::new(
            vec![Backend::new("b1", tsdb_srv.base_url())],
            Strategy::round_robin(),
        ),
        Authorizer::DirectDb(stack.updater.clone()),
        LbConfig {
            admin_users: vec!["op".into()],
            query_frontend: None,
        },
    ));
    let lb_srv = lb.serve().unwrap();
    let resp = Client::new()
        .with_header("X-Grafana-User", "alice")
        .with_header(TRACE_HEADER, "deadbeefdeadbeef")
        .get(&format!(
            "{}/api/v1/query?query={}",
            lb_srv.base_url(),
            ceems::http::url::encode_component("uuid:ceems_power:watts{uuid=\"slurm-1\"}")
        ))
        .unwrap();
    assert_eq!(resp.status.0, 200);
    {
        let captured = lines.lock();
        assert_eq!(captured.len(), 1, "expected exactly one slow line: {captured:?}");
        assert!(
            captured[0].starts_with("slow_query component=tsdb endpoint=/api/v1/query "),
            "bad line shape: {}",
            captured[0]
        );
        assert!(
            captured[0].contains("trace_id=deadbeefdeadbeef"),
            "slow line lost the trace ID: {}",
            captured[0]
        );
        assert!(
            captured[0].ends_with("query=\"uuid:ceems_power:watts{uuid=\\\"slurm-1\\\"}\""),
            "slow line lost the query text: {}",
            captured[0]
        );
    }
    lb_srv.shutdown();
    tsdb_srv.shutdown();
    lines.lock().clear();

    // A threshold nothing crosses: same traffic, zero lines.
    let quiet_srv = serve_with_threshold(1e12);
    let resp = Client::new()
        .get(&format!(
            "{}/api/v1/query?query={}",
            quiet_srv.base_url(),
            ceems::http::url::encode_component("uuid:ceems_power:watts{uuid=\"slurm-1\"}")
        ))
        .unwrap();
    assert_eq!(resp.status.0, 200);
    assert!(
        lines.lock().is_empty(),
        "slow-query log fired under a huge threshold: {:?}",
        lines.lock()
    );
    quiet_srv.shutdown();
}
