//! Query-frontend integration: a real simulated stack renders a Fig. 2c
//! dashboard twice through `ceems-qfe` (second render must come ≥90% from
//! the results cache, byte-identical), and a flooding tenant is shed with
//! 429s while another tenant's small queries keep completing.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use ceems::http::{Method, Request, Response, Status};
use ceems::prelude::*;
use ceems::qfe::{
    Downstream, QfeConfig, QueryFrontend, RouterDownstream, SchedulerConfig, StepGrid,
};
use ceems::tsdb::httpapi::api_router;

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "ceems-qfe-it-{tag}-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ))
}

/// The Fig. 2c panel expressions (see `ceems_core::dashboards`).
fn panel_queries(uuid: &str) -> Vec<String> {
    vec![
        format!("sum(uuid:ceems_cpu_time:rate{{uuid=\"{uuid}\"}})"),
        format!("sum(ceems_compute_unit_memory_used_bytes{{uuid=\"{uuid}\"}}) / 1073741824"),
        format!("sum(uuid:ceems_power:watts{{uuid=\"{uuid}\"}})"),
        format!("sum(rate(ceems_compute_unit_perf_flops_total{{uuid=\"{uuid}\"}}[2m])) / 1e9"),
        format!("sum(rate(ceems_compute_unit_net_rx_bytes_total{{uuid=\"{uuid}\"}}[2m])) / 1e6"),
    ]
}

fn range_request(query: &str, user: &str, start_s: i64, end_s: i64, step_s: i64) -> Request {
    Request::new(
        Method::Get,
        &format!(
            "/api/v1/query_range?query={}&start={start_s}&end={end_s}&step={step_s}",
            ceems::http::url::encode_component(query)
        ),
    )
    .with_header("x-grafana-user", user)
}

#[test]
fn fig2c_dashboard_second_render_is_cached_and_identical() {
    // A stack with a short split interval and no recent-window holdback,
    // straight from the single YAML config.
    let mut cfg = CeemsConfig::default();
    cfg.qfe.split_interval_s = 300.0;
    cfg.qfe.recent_window_s = 0.0;
    let mut stack = CeemsStack::build(cfg, &tmp_dir("fig2c")).unwrap();
    let job = stack
        .submit(JobRequest {
            user: "alice".into(),
            account: "proj".into(),
            partition: "cpu-intel".into(),
            nodes: 1,
            cores_per_node: 8,
            memory_per_node: 16 << 30,
            gpus_per_node: 0,
            walltime_s: 7200,
            workload: WorkloadProfile::CpuBound { intensity: 0.9 },
        })
        .unwrap();
    stack.run_for(1500.0, 15.0);
    let uuid = format!("slurm-{job}");

    let now_ms = stack.clock.now_ms();
    let fe = QueryFrontend::new(
        Arc::new(RouterDownstream::new(api_router(
            stack.tsdb.clone(),
            Arc::new(move || now_ms),
        ))),
        stack.qfe_config(Arc::new(move || now_ms)),
    );

    let render = |fe: &Arc<QueryFrontend>| -> (Vec<Vec<u8>>, usize, usize) {
        let (mut bodies, mut cached, mut fetched) = (Vec::new(), 0usize, 0usize);
        for q in panel_queries(&uuid) {
            let resp = fe.handle(&range_request(&q, "alice", 0, now_ms / 1000, 15));
            assert_eq!(resp.status, Status::OK, "panel failed: {}", resp.body_string());
            cached += resp
                .header("x-ceems-qfe-cached-steps")
                .unwrap()
                .parse::<usize>()
                .unwrap();
            fetched += resp
                .header("x-ceems-qfe-fetched-steps")
                .unwrap()
                .parse::<usize>()
                .unwrap();
            bodies.push(resp.body);
        }
        (bodies, cached, fetched)
    };

    let (first_bodies, first_cached, first_fetched) = render(&fe);
    assert_eq!(first_cached, 0, "cold render found a warm cache");
    assert!(first_fetched > 0);
    assert!(
        !fe.cache().is_empty(),
        "settled extents were not admitted to the cache"
    );

    let (second_bodies, second_cached, second_fetched) = render(&fe);
    assert_eq!(first_bodies, second_bodies, "cached render changed bytes");
    let total = second_cached + second_fetched;
    assert!(
        second_cached as f64 >= 0.9 * total as f64,
        "second render only {second_cached}/{total} steps from cache"
    );

    // The frontend's registry exposes the cache counters.
    let metrics =
        ceems::metrics::encode_families(&fe.registry().gather());
    assert!(metrics.contains("ceems_qfe_cache_requests_total"));
}

/// A downstream that answers every sub-query after a fixed delay — slow
/// enough that a flooding tenant saturates its concurrency slot and queue.
struct SlowDownstream {
    delay: std::time::Duration,
    calls: AtomicUsize,
}

impl Downstream for SlowDownstream {
    fn forward(&self, req: &Request) -> Result<Response, String> {
        self.calls.fetch_add(1, Ordering::SeqCst);
        std::thread::sleep(self.delay);
        let p = |name: &str| {
            (req.query_param(name).unwrap().parse::<f64>().unwrap() * 1000.0) as i64
        };
        let values: Vec<serde_json::Value> =
            StepGrid { start_ms: p("start"), end_ms: p("end"), step_ms: p("step") }
                .steps()
                .map(|t| serde_json::json!([t as f64 / 1000.0, "1"]))
                .collect();
        let body = serde_json::json!({
            "status": "success",
            "data": {
                "resultType": "matrix",
                "result": [{"metric": {"__name__": "m"}, "values": values}],
            },
        });
        Ok(Response::json(serde_json::to_vec(&body).unwrap()))
    }
}

#[test]
fn flooding_tenant_is_shed_while_other_tenant_completes() {
    let ds = Arc::new(SlowDownstream {
        delay: std::time::Duration::from_millis(25),
        calls: AtomicUsize::new(0),
    });
    let fe = QueryFrontend::new(
        ds.clone() as Arc<dyn Downstream>,
        QfeConfig {
            cache_bytes: 0, // every query must hit the slow downstream
            scheduler: SchedulerConfig {
                tenant_queue_depth: 1,
                max_tenant_concurrency: 1,
                max_concurrency: 2,
                retry_after_s: 0.1,
            },
            ..QfeConfig::default()
        },
    );

    // Tenant "flood" fires 8 concurrent long queries: one runs, one queues,
    // the rest must be shed with 429 + Retry-After.
    let mut flooders = Vec::new();
    for _ in 0..8 {
        let fe = fe.clone();
        flooders.push(std::thread::spawn(move || {
            fe.handle(&range_request("m", "flood", 0, 600, 15))
        }));
    }

    // Meanwhile tenant "small" keeps issuing little queries; every one of
    // them must complete (round-robin protects its slot).
    std::thread::sleep(std::time::Duration::from_millis(10));
    for _ in 0..4 {
        let resp = fe.handle(&range_request("m", "small", 0, 60, 15));
        assert_eq!(resp.status, Status::OK, "small tenant starved: {}", resp.body_string());
    }

    let flood_results: Vec<Response> =
        flooders.into_iter().map(|h| h.join().unwrap()).collect();
    let shed: Vec<&Response> = flood_results
        .iter()
        .filter(|r| r.status == Status::TOO_MANY_REQUESTS)
        .collect();
    let served = flood_results
        .iter()
        .filter(|r| r.status == Status::OK)
        .count();
    assert!(!shed.is_empty(), "queue depth 1 never overflowed");
    assert!(served >= 1, "flooding tenant should still get some work done");
    for r in &shed {
        let retry = r.retry_after_secs().expect("429 must carry Retry-After");
        assert!(retry > 0.0);
    }
    assert_eq!(fe.scheduler().shed_count(), shed.len() as u64);

    // The shed queries never reached the downstream.
    assert_eq!(
        ds.calls.load(Ordering::SeqCst),
        flood_results.len() - shed.len() + 4
    );
}
