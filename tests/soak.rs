//! Long-running soak tests, excluded from the default run. Execute with:
//!
//! ```sh
//! cargo test --release --test soak -- --ignored --nocapture
//! ```

use ceems::prelude::*;

/// A simulated day on a mid-size cluster with churn, cleanup and retention:
/// the monitoring pipeline must stay healthy for the duration — no scrape
/// failures, bounded cardinality, conservation maintained.
#[test]
#[ignore = "multi-minute soak; run explicitly with --ignored"]
fn one_simulated_day_of_monitoring() {
    let mut cfg = CeemsConfig {
        churn: Some(ChurnSettings {
            users: 40,
            projects: 8,
            arrivals_per_hour: 300.0,
        }),
        cleanup_cutoff_s: 300.0,
        ..CeemsConfig::default()
    };
    cfg.cluster.intel_nodes = 16;
    cfg.cluster.amd_nodes = 8;
    cfg.cluster.a100_nodes = 4;
    let dir = std::env::temp_dir().join(format!("ceems-soak-{}", std::process::id()));
    let mut stack = CeemsStack::build(cfg, &dir).unwrap();

    let mut max_series = 0usize;
    for hour in 0..24 {
        stack.run_for(3600.0, 15.0);
        max_series = max_series.max(stack.tsdb.series_count());
        let st = stack.stats();
        assert_eq!(st.scrape_failures, 0, "scrape failures at hour {hour}");

        let truth = stack.cluster.total_wall_power();
        let attributed = stack.total_attributed_power();
        assert!(
            attributed <= truth * 1.10,
            "hour {hour}: attributed {attributed:.0} W vs truth {truth:.0} W"
        );
        println!(
            "hour {hour:>2}: jobs={:<6} series={:<7} attributed={:.1}/{:.1} kW purged={}",
            st.jobs_submitted,
            stack.tsdb.series_count(),
            attributed / 1000.0,
            truth / 1000.0,
            stack.updater.lock().stats().units_purged,
        );
    }

    let st = stack.stats();
    // A day at 300 arrivals/hour lands in the paper's "daily churn in the
    // thousands" regime.
    assert!(st.jobs_submitted > 4000, "only {} jobs in a day", st.jobs_submitted);
    // Purge-eligible jobs are the short-failure tail (~0.5% of churn).
    let purged = stack.updater.lock().stats().units_purged;
    assert!(purged > 15, "only {purged} short units purged in a day");
    // Cardinality stayed bounded (cleanup + retention at work): the peak
    // is not 10x the end state.
    let end_series = stack.tsdb.series_count();
    assert!(
        max_series < end_series * 10,
        "series ballooned: peak {max_series}, end {end_series}"
    );
    std::fs::remove_dir_all(dir).ok();
}
