//! Streaming ingest end-to-end (S23): an exporter pushes sample batches
//! over the bus's HTTP surface, the recording-rule engine re-evaluates only
//! the sub-DAG whose inputs arrived, and a live `query_live` subscriber
//! receives per-step deltas that assemble to the byte-identical series a
//! poll-mode range query returns. A second test kills the stream
//! mid-subscription under seeded fault injection and proves resume from the
//! last acked offset replays with no gaps and no duplicates.

use std::collections::{BTreeMap, HashSet};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

use ceems::exporter::{CeemsExporter, ExporterConfig};
use ceems::http::fault::{FaultKind, FaultPlan, FaultRule};
use ceems::http::{Client, HttpServer, Router, ServerConfig};
use ceems::prelude::*;
use ceems::qfe::{QfeConfig, QueryFrontend, RouterDownstream};
use ceems::simnode::cluster::NodeHandle;
use ceems::simnode::node::{HardwareProfile, NodeSpec, SimNode, TaskSpec};
use ceems::stream::{
    RecordDecoder, SampleFrame, SinkReceipt, StreamBus, StreamBusConfig, StreamPublisher,
};
use ceems::tsdb::httpapi::api_router;
use ceems::tsdb::rules::{RecordingRule, RuleEngine, RuleGroup};
use parking_lot::Mutex;

fn busy_intel_node(seed: u64) -> NodeHandle {
    let mut n = SimNode::new(
        NodeSpec {
            hostname: format!("n{seed}"),
            profile: HardwareProfile::IntelCpu,
        },
        seed,
    );
    n.add_task(
        TaskSpec {
            id: seed,
            cores: 16,
            memory_bytes: 16 << 30,
            gpus: 0,
            workload: WorkloadProfile::CpuBound { intensity: 0.9 },
        },
        0,
    )
    .unwrap();
    Arc::new(Mutex::new(n))
}

/// A bus whose sink ingests frames into `db` through the scrape-identical
/// label-stamping path, recording which metric names arrived.
fn ingesting_bus(
    db: Arc<Tsdb>,
    arrived: Arc<Mutex<HashSet<String>>>,
    cfg: StreamBusConfig,
) -> Arc<StreamBus> {
    Arc::new(StreamBus::new(
        cfg,
        Arc::new(move |f: &SampleFrame| {
            let batch = ceems::tsdb::scrape::exposition_to_batch(
                &f.body,
                &f.instance,
                &f.job,
                &f.extra_labels,
                f.produced_ms,
            )?;
            let mut names: Vec<String> = batch
                .iter()
                .filter_map(|(ls, _, _)| ls.metric_name().map(str::to_string))
                .collect();
            names.sort_unstable();
            names.dedup();
            arrived.lock().extend(names.iter().cloned());
            let samples = batch.len() as u64;
            db.append_batch(&batch);
            Ok(SinkReceipt { samples, names })
        }),
    ))
}

fn stream_router(bus: Arc<StreamBus>, now: Arc<AtomicI64>) -> Router {
    let mut router = Router::new();
    ceems::stream::http::mount(
        &mut router,
        bus,
        Arc::new(move || now.load(Ordering::SeqCst)),
        None,
    );
    router
}

/// Splits accumulated SSE bytes into complete `(event, data)` pairs,
/// leaving any trailing partial event in the buffer.
fn drain_sse(buf: &mut String) -> Vec<(String, serde_json::Value)> {
    let mut out = Vec::new();
    while let Some(end) = buf.find("\n\n") {
        let block: String = buf.drain(..end + 2).collect();
        let mut event = String::new();
        let mut data = String::new();
        for line in block.lines() {
            if let Some(v) = line.strip_prefix("event: ") {
                event = v.to_string();
            } else if let Some(v) = line.strip_prefix("data: ") {
                data = v.to_string();
            }
        }
        if !event.is_empty() {
            out.push((event, serde_json::from_str(&data).unwrap()));
        }
    }
    out
}

/// `data.result[0].values` of a query_range-shaped JSON body.
fn values_of(body: &serde_json::Value) -> Vec<serde_json::Value> {
    body.get("data")
        .and_then(|d| d.get("result"))
        .and_then(|r| r.as_array())
        .and_then(|r| r.first())
        .and_then(|s| s.get("values"))
        .and_then(|v| v.as_array())
        .cloned()
        .unwrap_or_default()
}

/// One exporter render pushed over HTTP, ingested, and fed to the
/// incremental rule engine — the streaming replacement for a scrape pass.
struct PushHarness {
    node: NodeHandle,
    exporter: Arc<CeemsExporter>,
    publisher: StreamPublisher,
    engine: RuleEngine,
    db: Arc<Tsdb>,
    arrived: Arc<Mutex<HashSet<String>>>,
    now: Arc<AtomicI64>,
}

impl PushHarness {
    fn push_step(&mut self, t: i64) {
        self.node.lock().step(t, 15.0);
        self.now.store(t, Ordering::SeqCst);
        self.publisher
            .publish(self.exporter.render_for_push(), t)
            .unwrap_or_else(|e| panic!("push at {t} failed: {e}"));
        let names: HashSet<String> = self.arrived.lock().drain().collect();
        assert!(
            names.contains("ceems_rapl_package_joules_total"),
            "pushed render did not carry RAPL energy counters"
        );
        self.engine.tick_incremental(&self.db, t, &names);
    }
}

#[test]
fn push_ingest_incremental_rules_and_live_delta_match_poll_mode() {
    let db = Arc::new(Tsdb::default());
    let arrived = Arc::new(Mutex::new(HashSet::new()));
    let now = Arc::new(AtomicI64::new(0));
    let bus = ingesting_bus(db.clone(), arrived.clone(), StreamBusConfig::default());
    let server = HttpServer::serve(
        ServerConfig::ephemeral(),
        stream_router(bus.clone(), now.clone()),
    )
    .unwrap();

    // A real exporter publishes its renders; rules re-evaluate on arrival.
    // `r_cold` reads a metric that never arrives, so incremental evaluation
    // must leave it untouched.
    let node = busy_intel_node(7);
    let mut h = PushHarness {
        exporter: Arc::new(CeemsExporter::new(
            node.clone(),
            SimClock::new(),
            ExporterConfig::default(),
        )),
        node,
        publisher: StreamPublisher::new(
            &server.base_url(),
            "node-metrics",
            "n7",
            "n7:9100",
            "ceems",
            vec![("nodegroup".to_string(), "intel-dram".to_string())],
        ),
        engine: RuleEngine::new(vec![RuleGroup {
            name: "g".into(),
            interval_ms: 15_000,
            rules: vec![
                RecordingRule::new("r_power", "rate(ceems_rapl_package_joules_total[2m])", &[])
                    .unwrap(),
                RecordingRule::new("r_cold", "rate(never_seen_total[2m])", &[]).unwrap(),
            ],
        }]),
        db: db.clone(),
        arrived,
        now: now.clone(),
    };
    for k in 1..=20 {
        h.push_step(k * 15_000);
    }
    assert_eq!(h.engine.eval_count("r_power"), 20);
    assert_eq!(
        h.engine.eval_count("r_cold"),
        0,
        "rule with no arrived inputs must stay cold"
    );

    // Live subscription through a served frontend over the same TSDB.
    let qnow = now.clone();
    let rnow = now.clone();
    let fe = QueryFrontend::new(
        Arc::new(RouterDownstream::new(api_router(
            db,
            Arc::new(move || rnow.load(Ordering::SeqCst)),
        ))),
        QfeConfig {
            now: Arc::new(move || qnow.load(Ordering::SeqCst)),
            ..Default::default()
        },
    );
    let fe_srv = fe.serve().unwrap();
    let client = Client::new().with_header("x-grafana-user", "alice");
    let query = ceems::http::url::encode_component("sum(r_power)");
    let mut sub = client
        .get_stream(&format!(
            "{}/api/v1/query_live?query={query}&step=15&since=120",
            fe_srv.base_url()
        ))
        .unwrap();
    assert_eq!(sub.status.0, 200);
    assert_eq!(fe.live_subscriber_count(), 1);

    let mut buf = String::new();
    let mut events: Vec<(String, serde_json::Value)> = Vec::new();
    while events.is_empty() {
        match sub.next_chunk().unwrap() {
            Some(chunk) => {
                buf.push_str(std::str::from_utf8(&chunk).unwrap());
                events.extend(drain_sse(&mut buf));
            }
            None => panic!("stream closed before the full render arrived"),
        }
    }
    assert_eq!(events[0].0, "full");
    let mut live_values = values_of(&events[0].1);
    assert_eq!(
        live_values.len(),
        9,
        "full render must cover the trailing 120s grid"
    );

    // One more pushed batch: the subscriber gets exactly the new step.
    h.push_step(315_000);
    now.store(315_500, Ordering::SeqCst);
    assert_eq!(fe.push_live(315_500), 1, "one delta should be pushed");
    let mut deltas: Vec<(String, serde_json::Value)> = Vec::new();
    while deltas.is_empty() {
        match sub.next_chunk().unwrap() {
            Some(chunk) => {
                buf.push_str(std::str::from_utf8(&chunk).unwrap());
                deltas.extend(drain_sse(&mut buf));
            }
            None => panic!("stream closed before the delta arrived"),
        }
    }
    assert_eq!(deltas[0].0, "delta");
    let delta_values = values_of(&deltas[0].1);
    assert_eq!(delta_values.len(), 1, "delta must carry exactly one step");
    live_values.extend(delta_values);

    // Poll-mode ground truth over the same grid: byte-identical values.
    let poll = client
        .get(&format!(
            "{}/api/v1/query_range?query={query}&start=180&end=315&step=15",
            fe_srv.base_url()
        ))
        .unwrap();
    assert_eq!(poll.status.0, 200);
    let poll_json: serde_json::Value = serde_json::from_slice(&poll.body).unwrap();
    let poll_values = values_of(&poll_json);
    assert_eq!(
        serde_json::to_string(&live_values).unwrap(),
        serde_json::to_string(&poll_values).unwrap(),
        "assembled live series diverged from the poll-mode render"
    );

    fe_srv.shutdown();
    server.shutdown();
}

#[test]
fn resume_after_faulted_stream_replays_without_gaps_or_duplicates() {
    let db = Arc::new(Tsdb::default());
    let arrived = Arc::new(Mutex::new(HashSet::new()));
    let now = Arc::new(AtomicI64::new(0));
    let bus = ingesting_bus(db, arrived, StreamBusConfig::default());

    // Seeded faults, per-endpoint request index: the third push (#2) is
    // reset mid-flight — and so is the pooled client's automatic
    // fresh-connection retry (#3) — so the publisher must buffer and
    // re-flush. The first *re*-subscribe attempt (#1 — #0 is the initial
    // subscription) is reset so the consumer must retry before it resumes.
    let plan = FaultPlan::new(4242)
        .with_rule(FaultRule::new("/api/v1/stream/push", FaultKind::ConnReset, 1.0).between(2, 4))
        .with_rule(
            FaultRule::new("/api/v1/stream/subscribe", FaultKind::ConnReset, 1.0).between(1, 2),
        )
        .shared();
    let server = HttpServer::serve(
        ServerConfig::ephemeral().with_fault_plan(plan),
        stream_router(bus.clone(), now),
    )
    .unwrap();
    let sub_url = |from: u64| {
        format!(
            "{}/api/v1/stream/subscribe?topic=t&from_offset={from}",
            server.base_url()
        )
    };
    let client = Client::new();

    // Ground truth: every exposition body we will publish, in order. The
    // streamed copy must assemble to exactly this, byte for byte.
    let truth: Vec<String> = (1..=6).map(|i| format!("m {i}\n")).collect();
    let mut publisher =
        StreamPublisher::new(&server.base_url(), "t", "p1", "p1:9100", "ceems", vec![]);

    // Live subscription (request #0, clean).
    let mut sub = client.get_stream(&sub_url(0)).unwrap();
    assert_eq!(sub.status.0, 200);

    // Frames 1-3 pushed one request each; request #2 is reset before the
    // handler runs, so frame 3 stays buffered and the next flush resumes.
    for body in &truth[..2] {
        publisher.publish(body.clone(), 1_000).unwrap();
    }
    assert!(
        publisher.publish(truth[2].clone(), 1_000).is_err(),
        "the faulted push must surface as a transport error"
    );
    assert_eq!(publisher.pending(), 1);
    let report = publisher.flush().unwrap();
    assert_eq!(report.acked_seq, 3);
    assert_eq!(publisher.pending(), 0);
    assert!(
        publisher.resumed_flushes() >= 1,
        "re-flush must count as a resume"
    );
    assert_eq!(publisher.dropped_frames(), 0);
    assert!(
        publisher.stats().unacked_high_watermark() >= 1,
        "buffered frames must register in the high watermark"
    );

    // Delivery stats render on a registry as the exporter's /metrics would.
    let registry = ceems_metrics::Registry::new();
    ceems_stream::register_publisher_metrics(&registry, "p1", publisher.stats());
    let text = ceems_metrics::encode_families(&registry.gather());
    for metric in [
        "ceems_stream_publisher_unacked_frames",
        "ceems_stream_publisher_unacked_high_watermark",
        "ceems_stream_publisher_dropped_frames_total",
        "ceems_stream_publisher_resumed_flushes_total",
    ] {
        assert!(text.contains(metric), "missing {metric} in:\n{text}");
    }
    assert!(text.contains("publisher=\"p1\""));

    // Collect what arrived live, then kill the stream mid-subscription.
    let mut got: BTreeMap<u64, String> = BTreeMap::new();
    let mut dec = RecordDecoder::new();
    fn ingest(records: Vec<serde_json::Value>, got: &mut BTreeMap<u64, String>) {
        for record in records {
            assert!(
                record.get("control").is_none(),
                "unexpected control record (gap?): {record}"
            );
            let offset = record.get("offset").and_then(|v| v.as_u64()).unwrap();
            let frame = SampleFrame::from_json(&record).unwrap();
            assert!(
                got.insert(offset, frame.body).is_none(),
                "offset {offset} delivered twice"
            );
        }
    }
    while got.len() < 3 {
        let chunk = sub
            .next_chunk()
            .unwrap()
            .expect("stream ended before the first three frames");
        ingest(dec.feed(&chunk).unwrap(), &mut got);
    }
    drop(sub); // the consumer dies mid-subscription

    // Frames 4-5 flow while nobody is listening; the replay ring keeps them.
    for body in &truth[3..5] {
        publisher.publish(body.clone(), 2_000).unwrap();
    }

    // Resume from the last offset we saw. The first attempt lands in the
    // fault window and is reset; the retry must replay 4-5 with no gap and
    // no repeat of 1-3.
    let last_seen = *got.keys().next_back().unwrap();
    assert_eq!(last_seen, 3);
    let mut attempts = 0;
    let mut sub = loop {
        attempts += 1;
        assert!(
            attempts <= 5,
            "resume subscribe kept failing past the fault window"
        );
        match client.get_stream(&sub_url(last_seen)) {
            Ok(s) if s.status.0 == 200 => break s,
            _ => continue,
        }
    };
    assert!(
        attempts >= 2,
        "the seeded fault should reset the first resume attempt"
    );
    let mut dec = RecordDecoder::new();
    while got.len() < 5 {
        let chunk = sub
            .next_chunk()
            .unwrap()
            .expect("resumed stream ended before replay finished");
        ingest(dec.feed(&chunk).unwrap(), &mut got);
    }

    // One live frame after the resume proves the subscription is current.
    publisher.publish(truth[5].clone(), 3_000).unwrap();
    while got.len() < 6 {
        let chunk = sub
            .next_chunk()
            .unwrap()
            .expect("stream ended before the live frame");
        ingest(dec.feed(&chunk).unwrap(), &mut got);
    }

    // No gaps, no duplicates: offsets are exactly 1..=6 and the assembled
    // payload byte-equals the unsubscribed ground truth.
    let offsets: Vec<u64> = got.keys().copied().collect();
    assert_eq!(offsets, (1..=6).collect::<Vec<u64>>());
    let assembled: String = got.values().cloned().collect();
    assert_eq!(assembled, truth.concat());

    let stats = bus.stats();
    assert_eq!(stats.published, 6);
    assert_eq!(stats.duplicates, 0, "the faulted push died before ingest");
    assert_eq!(stats.resumed, 1, "exactly the successful resume is counted");

    server.shutdown();
}
