//! Additional cross-substrate property tests: parser robustness, codec
//! round-trips, power-model monotonicity and dashboard invariants.

use ceems::core::dashboards::sparkline;
use ceems::core::yaml;
use ceems::http::url::{decode_component, encode_component, encode_query, parse_query};
use ceems::simnode::power::{compute_power, PowerSpec};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The YAML parser must never panic, whatever the input.
    #[test]
    fn yaml_parser_never_panics(input in "\\PC{0,512}") {
        let _ = yaml::parse(&input);
    }

    /// Structured config-like documents parse and expose their keys.
    #[test]
    fn yaml_roundtrips_flat_integer_maps(
        pairs in proptest::collection::btree_map("[a-z][a-z0-9_]{0,10}", -1000i64..1000, 1..10)
    ) {
        let doc: String = pairs
            .iter()
            .map(|(k, v)| format!("{k}: {v}\n"))
            .collect();
        let parsed = yaml::parse(&doc).unwrap();
        for (k, v) in &pairs {
            prop_assert_eq!(parsed.get(k).and_then(yaml::Yaml::as_i64), Some(*v), "key {}", k);
        }
    }

    /// Percent-encoding round-trips any string.
    #[test]
    fn url_component_roundtrip(s in "\\PC{0,64}") {
        prop_assert_eq!(decode_component(&encode_component(&s)), s);
    }

    /// Query strings round-trip ordered pairs.
    #[test]
    fn query_string_roundtrip(
        pairs in proptest::collection::vec(("[a-zA-Z0-9_\\[\\]]{1,8}", "\\PC{0,16}"), 0..6)
    ) {
        let pairs: Vec<(String, String)> = pairs.into_iter().collect();
        prop_assert_eq!(parse_query(&encode_query(&pairs)), pairs);
    }

    /// Node power is monotone in each utilisation dimension and bounded by
    /// the spec's extremes.
    #[test]
    fn power_model_monotone_and_bounded(
        cpu in 0.0f64..1.0,
        mem in 0.0f64..1.0,
        d_cpu in 0.0f64..0.5,
        d_mem in 0.0f64..0.5,
    ) {
        for spec in [PowerSpec::intel_cpu_node(), PowerSpec::amd_cpu_node()] {
            let base = compute_power(&spec, cpu, mem, &[]);
            let more_cpu = compute_power(&spec, (cpu + d_cpu).min(1.0), mem, &[]);
            let more_mem = compute_power(&spec, cpu, (mem + d_mem).min(1.0), &[]);
            prop_assert!(more_cpu.wall_w() >= base.wall_w() - 1e-9);
            prop_assert!(more_mem.wall_w() >= base.wall_w() - 1e-9);

            let idle = compute_power(&spec, 0.0, 0.0, &[]);
            let max = compute_power(&spec, 1.0, 1.0, &[]);
            prop_assert!(base.wall_w() >= idle.wall_w() - 1e-9);
            prop_assert!(base.wall_w() <= max.wall_w() + 1e-9);
            // PSU loss is always positive and proportional.
            prop_assert!(base.psu_loss_w > 0.0);
        }
    }

    /// Sparklines preserve length and only emit known glyphs.
    #[test]
    fn sparkline_invariants(values in proptest::collection::vec(proptest::num::f64::ANY, 0..64)) {
        let s = sparkline(&values);
        prop_assert_eq!(s.chars().count(), values.len());
        for c in s.chars() {
            prop_assert!("▁▂▃▄▅▆▇█·".contains(c), "unexpected glyph {c:?}");
        }
    }

    /// The highest finite value always maps to the tallest block.
    #[test]
    fn sparkline_peak_is_full_block(values in proptest::collection::vec(-1e9f64..1e9, 2..32)) {
        let s: Vec<char> = sparkline(&values).chars().collect();
        let peak_idx = values
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        prop_assert_eq!(s[peak_idx], '█');
    }
}

#[test]
fn yaml_config_sample_from_cli_parses() {
    // The `ceems config-example` document must always parse into a config.
    let sample = "\
cluster:
  intel_nodes: 4
  amd_nodes: 2
  v100_nodes: 1
  a100_nodes: 1
  h100_nodes: 0
  seed: 42
tsdb:
  scrape_interval_s: 15
  rule_window: 2m
  rule_interval_s: 30
api_server:
  update_interval_s: 60
  cleanup_cutoff_s: 120
  admin_users:
    - root
emissions:
  zone: FR
  providers:
    - rte
    - owid
lb:
  strategy: round_robin
churn:
  users: 12
  projects: 4
  arrivals_per_hour: 180
threads: 4
";
    let cfg = ceems::prelude::CeemsConfig::from_yaml(sample).unwrap();
    assert_eq!(cfg.cluster.total_nodes(), 8);
    assert_eq!(cfg.cleanup_cutoff_s, 120.0);
    assert_eq!(cfg.churn.unwrap().arrivals_per_hour, 180.0);
}
