//! Offline subset implementation of the `bytes` crate: a cheap-to-clone
//! immutable byte buffer. The workspace declares the dependency but only
//! needs the basic container.

use std::sync::Arc;

/// A cheaply cloneable, immutable contiguous byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct Bytes(Arc<Vec<u8>>);

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Bytes(Arc::new(Vec::new()))
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::new(data.to_vec()))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::new(v))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Self {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}
