//! Offline subset implementation of the `criterion` benchmarking API.
//!
//! Measures wall-clock time with adaptive iteration counts and prints
//! `name  time: [median ± spread]` lines. No statistical regression
//! analysis, plots or report files — just honest timing suitable for
//! relative comparisons (the only thing this workspace's experiment rows
//! use benches for).

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const DEFAULT_SAMPLE_SIZE: usize = 10;
/// Total measurement budget per benchmark (split across samples).
const MEASUREMENT_BUDGET: Duration = Duration::from_millis(400);
const WARMUP_BUDGET: Duration = Duration::from_millis(120);

/// Identifier for a parameterized benchmark (`group/function/param`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a displayed parameter.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Builds an id from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

/// Values convertible into a benchmark label.
pub trait IntoBenchmarkLabel {
    /// The printable label.
    fn into_label(self) -> String;
}

impl IntoBenchmarkLabel for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkLabel for String {
    fn into_label(self) -> String {
        self
    }
}

impl IntoBenchmarkLabel for BenchmarkId {
    fn into_label(self) -> String {
        self.name
    }
}

/// Per-iteration timing collector passed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    /// Median nanoseconds per iteration, filled by `iter`.
    result_ns: f64,
    spread_ns: f64,
}

impl Bencher {
    /// Times a routine: warmup, then `sample_size` timed samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warmup and iteration-count calibration.
        let mut iters_per_sample = 1u64;
        let warmup_start = Instant::now();
        loop {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = t.elapsed();
            if warmup_start.elapsed() >= WARMUP_BUDGET {
                // Aim each sample at budget/sample_size.
                let target = MEASUREMENT_BUDGET.as_secs_f64() / self.sample_size as f64;
                let per_iter = elapsed.as_secs_f64() / iters_per_sample as f64;
                if per_iter > 0.0 {
                    iters_per_sample = ((target / per_iter) as u64).clamp(1, 1_000_000_000);
                }
                break;
            }
            iters_per_sample = iters_per_sample.saturating_mul(2).min(1_000_000_000);
        }

        let mut samples_ns = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            samples_ns.push(t.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
        samples_ns.sort_by(|a, b| a.total_cmp(b));
        let median = samples_ns[samples_ns.len() / 2];
        let spread = samples_ns[samples_ns.len() - 1] - samples_ns[0];
        self.result_ns = median;
        self.spread_ns = spread;
    }

    /// Times a routine whose input is rebuilt (untimed) before every call.
    pub fn iter_with_setup<S, O, FS, F>(&mut self, mut setup: FS, mut routine: F)
    where
        FS: FnMut() -> S,
        F: FnMut(S) -> O,
    {
        // Setup runs outside the timed region; samples are single-iteration.
        let warmup = setup();
        let t = Instant::now();
        black_box(routine(warmup));
        let per_iter = t.elapsed();
        let budget_each = MEASUREMENT_BUDGET / self.sample_size as u32;
        let _ = (per_iter, budget_each);

        let mut samples_ns = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            samples_ns.push(t.elapsed().as_nanos() as f64);
        }
        samples_ns.sort_by(|a, b| a.total_cmp(b));
        self.result_ns = samples_ns[samples_ns.len() / 2];
        self.spread_ns = samples_ns[samples_ns.len() - 1] - samples_ns[0];
    }

    /// Like `iter_with_setup` (newer criterion name).
    pub fn iter_batched<S, O, FS, F>(&mut self, setup: FS, routine: F, _size: BatchSize)
    where
        FS: FnMut() -> S,
        F: FnMut(S) -> O,
    {
        self.iter_with_setup(setup, routine);
    }
}

/// Batch sizing hint (ignored; present for API compatibility).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small inputs.
    SmallInput,
    /// Large inputs.
    LargeInput,
    /// One iteration per batch.
    PerIteration,
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher {
        sample_size: sample_size.max(2),
        result_ns: 0.0,
        spread_ns: 0.0,
    };
    f(&mut bencher);
    println!(
        "{label:<60} time: [{} ± {}]",
        format_ns(bencher.result_ns),
        format_ns(bencher.spread_ns)
    );
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }
}

impl Criterion {
    /// CLI-argument hook (no-op in the shim).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Sets the default number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Runs a single benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkLabel, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.into_label(), self.sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }
}

/// A named group of benchmarks (`group/bench` labels).
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkLabel, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_label());
        run_bench(&label, self.sample_size, f);
        self
    }

    /// Runs a benchmark parameterized by an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkLabel,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_label());
        run_bench(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group function running the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed group functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports_time() {
        let mut c = Criterion::default();
        // Just ensure the full path runs without panicking and quickly.
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::new("param", 4), &4usize, |b, &n| {
            b.iter(|| n * 2)
        });
        group.bench_function("setup", |b| b.iter_with_setup(|| vec![1, 2, 3], |v| v.len()));
        group.finish();
    }
}
