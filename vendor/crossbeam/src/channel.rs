//! Multi-producer multi-consumer channels.
//!
//! Unlike `std::sync::mpsc`, receivers are cloneable: every queued message is
//! delivered to exactly one receiver, whichever calls `recv` first. Backed by
//! a `Mutex<VecDeque>` plus two condition variables (not-empty / not-full).

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};

struct Inner<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: Option<usize>,
}

/// Error returned by [`Sender::send`] when all receivers are gone; carries
/// the unsent message.
#[derive(PartialEq, Eq, Clone, Copy)]
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl<T: Send> std::error::Error for SendError<T> {}

/// Error returned by [`Receiver::recv`] when the channel is empty and all
/// senders are gone.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum TryRecvError {
    /// Channel is currently empty.
    Empty,
    /// Channel is empty and all senders are gone.
    Disconnected,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => f.write_str("receiving on an empty channel"),
            TryRecvError::Disconnected => {
                f.write_str("receiving on an empty and disconnected channel")
            }
        }
    }
}

impl std::error::Error for TryRecvError {}

/// The sending half of a channel. Cloneable.
pub struct Sender<T>(Arc<Shared<T>>);

/// The receiving half of a channel. Cloneable: each message is delivered to
/// exactly one receiver.
pub struct Receiver<T>(Arc<Shared<T>>);

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.0.inner.lock().unwrap().senders += 1;
        Sender(Arc::clone(&self.0))
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut inner = self.0.inner.lock().unwrap();
        inner.senders -= 1;
        if inner.senders == 0 {
            // Wake blocked receivers so they observe disconnection.
            self.0.not_empty.notify_all();
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.0.inner.lock().unwrap().receivers += 1;
        Receiver(Arc::clone(&self.0))
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut inner = self.0.inner.lock().unwrap();
        inner.receivers -= 1;
        if inner.receivers == 0 {
            // Wake blocked senders so they observe disconnection.
            self.0.not_full.notify_all();
        }
    }
}

impl<T> Sender<T> {
    /// Sends a message, blocking while a bounded channel is full. Fails only
    /// when every receiver has been dropped.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut inner = self.0.inner.lock().unwrap();
        loop {
            if inner.receivers == 0 {
                return Err(SendError(msg));
            }
            match self.0.capacity {
                Some(cap) if inner.queue.len() >= cap => {
                    inner = self.0.not_full.wait(inner).unwrap();
                }
                _ => break,
            }
        }
        inner.queue.push_back(msg);
        drop(inner);
        self.0.not_empty.notify_one();
        Ok(())
    }
}

impl<T> Receiver<T> {
    /// Receives a message, blocking while the channel is empty. Fails only
    /// when the channel is empty and every sender has been dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut inner = self.0.inner.lock().unwrap();
        loop {
            if let Some(msg) = inner.queue.pop_front() {
                drop(inner);
                self.0.not_full.notify_one();
                return Ok(msg);
            }
            if inner.senders == 0 {
                return Err(RecvError);
            }
            inner = self.0.not_empty.wait(inner).unwrap();
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut inner = self.0.inner.lock().unwrap();
        if let Some(msg) = inner.queue.pop_front() {
            drop(inner);
            self.0.not_full.notify_one();
            return Ok(msg);
        }
        if inner.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.0.inner.lock().unwrap().queue.len()
    }

    /// True when no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

fn make_channel<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        capacity,
    });
    (Sender(Arc::clone(&shared)), Receiver(shared))
}

/// Creates a bounded MPMC channel with the given capacity.
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    make_channel(Some(capacity.max(1)))
}

/// Creates an unbounded MPMC channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    make_channel(None)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fan_out_to_multiple_receivers() {
        let (tx, rx) = bounded(4);
        let mut handles = Vec::new();
        for _ in 0..3 {
            let rx = rx.clone();
            handles.push(std::thread::spawn(move || {
                let mut n = 0usize;
                while rx.recv().is_ok() {
                    n += 1;
                }
                n
            }));
        }
        drop(rx);
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn send_fails_without_receivers() {
        let (tx, rx) = bounded::<u32>(1);
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn recv_drains_before_disconnect() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Err(RecvError));
    }
}
