//! Offline subset implementation of the `crossbeam` API used by this
//! workspace: multi-producer multi-consumer channels (`crossbeam::channel`)
//! and scoped threads (`crossbeam::thread::scope`).

pub mod channel;
pub mod thread;

pub use thread::scope;
