//! Scoped threads with the `crossbeam::thread` API, backed by
//! `std::thread::scope` (which stabilised after crossbeam pioneered the
//! pattern). Spawn closures receive a `&Scope` so they can spawn siblings.

/// A scope handle passed to spawned closures.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread; the closure receives the scope so it can
    /// spawn further siblings.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        ScopedJoinHandle(inner.spawn(move || f(&Scope { inner })))
    }
}

/// Handle to a scoped thread; joining yields the closure's return value.
pub struct ScopedJoinHandle<'scope, T>(std::thread::ScopedJoinHandle<'scope, T>);

impl<T> ScopedJoinHandle<'_, T> {
    /// Waits for the thread to finish. `Err` carries the panic payload.
    pub fn join(self) -> std::thread::Result<T> {
        self.0.join()
    }
}

/// Creates a scope for spawning threads that may borrow from the enclosing
/// stack frame. All spawned threads are joined before this returns.
///
/// Note: the real crossbeam catches child panics and reports them through
/// the returned `Result`; `std::thread::scope` resumes unwinding instead, so
/// a child panic propagates out of `scope` directly (the usual `.unwrap()`
/// at call sites behaves identically either way).
pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total = super::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_from_child() {
        let n = super::scope(|s| {
            s.spawn(|s2| s2.spawn(|_| 21).join().unwrap() * 2)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(n, 42);
    }
}
