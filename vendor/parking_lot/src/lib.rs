//! Offline subset implementation of the `parking_lot` API used by this
//! workspace, backed by `std::sync` primitives.
//!
//! Differences from the real crate are deliberate and minor: lock guards are
//! the `std` guard types, and poisoning is transparently swallowed (a
//! poisoned lock yields its inner guard, matching `parking_lot`'s
//! no-poisoning semantics).

/// A mutual exclusion primitive (no poisoning, like `parking_lot`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(_) => unreachable!("poisoning is swallowed"),
        }
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

/// A reader-writer lock (no poisoning, like `parking_lot`).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(_) => unreachable!("poisoning is swallowed"),
        }
    }
}

impl<T> From<T> for RwLock<T> {
    fn from(value: T) -> Self {
        RwLock::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
