//! Collection strategies.

use std::collections::BTreeMap;
use std::fmt;
use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Size specification for collections (from a `usize` range or a constant).
#[derive(Clone, Debug)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n + 1 }
    }
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        self.min + rng.below(self.max - self.min)
    }
}

/// Strategy producing `Vec`s of values from an element strategy.
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// `Vec` strategy with lengths drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy producing `BTreeMap`s from key and value strategies.
#[derive(Clone, Debug)]
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: SizeRange,
}

/// `BTreeMap` strategy with sizes drawn from `size`. Key collisions are
/// retried a bounded number of times, so maps can occasionally come out
/// smaller than the minimum when the key domain is tiny.
pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
where
    K: Strategy,
    V: Strategy,
    K::Value: Ord,
{
    BTreeMapStrategy {
        key,
        value,
        size: size.into(),
    }
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    V: Strategy,
    K::Value: Ord + fmt::Debug,
    V::Value: fmt::Debug,
{
    type Value = BTreeMap<K::Value, V::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let target = self.size.sample(rng);
        let mut map = BTreeMap::new();
        let mut attempts = 0usize;
        while map.len() < target && attempts < target * 10 + 10 {
            attempts += 1;
            map.insert(self.key.generate(rng), self.value.generate(rng));
        }
        map
    }
}
