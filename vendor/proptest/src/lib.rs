//! Offline subset implementation of the `proptest` API used by this
//! workspace.
//!
//! Differences from the real crate, by design:
//! - **No shrinking.** A failing case reports the exact generated inputs
//!   (which are deterministic per test name) instead of a minimized one.
//! - **Deterministic seeding.** The RNG is seeded from the test name, so a
//!   failure always reproduces; there is no persistence file.
//! - Strategies are generate-only (`Strategy::generate`), not value trees.
//!
//! Supported surface: `proptest!` (with `#![proptest_config]`),
//! `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`, `prop_oneof!`,
//! `Just`, `any`, `Strategy::prop_map`, ranges as strategies, regex-string
//! strategies (`&str` literals and `string::string_regex`),
//! `collection::{vec, btree_map}`, `option::of`, and
//! `num::f64::{ANY, NORMAL}`.

pub mod collection;
pub mod num;
pub mod option;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub use strategy::{any, Arbitrary, Just, Strategy};
pub use test_runner::ProptestConfig;

/// Everything a property test usually needs.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property-test functions: each `fn name(arg in strategy, ...)`
/// becomes a `fn name()` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; do not use directly.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg = $cfg;
                let __strategy = ($($strat,)+);
                $crate::test_runner::run(
                    stringify!($name),
                    &__cfg,
                    &__strategy,
                    |($($arg,)+)| $body,
                );
            }
        )*
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            panic!("assertion failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            panic!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    panic!("assertion failed: `left == right`\n  left: {:?}\n right: {:?}", __l, __r);
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    panic!(
                        "assertion failed: `left == right`\n  left: {:?}\n right: {:?}\n {}",
                        __l, __r, format!($($fmt)+)
                    );
                }
            }
        }
    };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if *__l == *__r {
                    panic!("assertion failed: `left != right`\n  both: {:?}", __l);
                }
            }
        }
    };
}

/// Picks one of several strategies, optionally weighted
/// (`prop_oneof![3 => a, 1 => b]`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $( (($weight) as u32, $crate::strategy::union_arm($strat)) ),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![ $( 1 => $strat ),+ ]
    };
}
