//! Numeric strategies.

/// Floating-point strategies for `f64`.
pub mod f64 {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy over every `f64` bit pattern: includes NaN, infinities,
    /// zeros and subnormals.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// Every `f64`, including NaN and infinities.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            f64::from_bits(rng.next_u64())
        }
    }

    /// Strategy over normal (finite, non-zero, non-subnormal) `f64`s.
    #[derive(Clone, Copy, Debug)]
    pub struct Normal;

    /// Normal floats only: finite, non-zero, full exponent range.
    pub const NORMAL: Normal = Normal;

    impl Strategy for Normal {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let sign = rng.next_u64() & (1 << 63);
            // Biased exponent in [1, 2046]: excludes zero/subnormal (0)
            // and inf/NaN (2047).
            let exponent = 1 + rng.next_u64() % 2046;
            let mantissa = rng.next_u64() & ((1u64 << 52) - 1);
            f64::from_bits(sign | (exponent << 52) | mantissa)
        }
    }
}

/// Floating-point strategies for `f32`.
pub mod f32 {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy over every `f32` bit pattern.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// Every `f32`, including NaN and infinities.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            f32::from_bits(rng.next_u64() as u32)
        }
    }
}
