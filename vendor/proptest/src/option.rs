//! `Option` strategies.

use std::fmt;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy producing `Option`s (roughly one quarter `None`).
#[derive(Clone, Debug)]
pub struct OptionStrategy<S>(S);

/// Wraps a strategy's values in `Option`, generating `None` ~25% of the time.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy(inner)
}

impl<S: Strategy> Strategy for OptionStrategy<S>
where
    S::Value: fmt::Debug,
{
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        if rng.next_u64().is_multiple_of(4) {
            None
        } else {
            Some(self.0.generate(rng))
        }
    }
}
