//! The [`Strategy`] trait and core combinators.

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Generate-only (no shrinking): see the crate docs.
pub trait Strategy {
    /// The generated type.
    type Value: fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through a function.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: fmt::Debug,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generates values satisfying a predicate (up to a retry bound).
    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            f,
            reason,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    U: fmt::Debug,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
    reason: &'static str,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter exhausted retries: {}", self.reason);
    }
}

// ------------------------------------------------------------------ ranges

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.unit_f64() as $t * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                start + rng.unit_f64() as $t * (end - start)
            }
        }
    )*};
}
impl_float_range!(f32, f64);

// ------------------------------------------------------------------ tuples

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

// ----------------------------------------------------------- regex strings

/// String literals are regex-shaped string strategies, as in real proptest.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let pattern = crate::string::compile(self)
            .unwrap_or_else(|e| panic!("invalid string strategy {self:?}: {e}"));
        pattern.generate(rng)
    }
}

// ------------------------------------------------------------------- union

/// Object-safe strategy facade used by [`Union`].
pub trait DynStrategy<T> {
    /// Draws one value.
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// Boxes a strategy for use as a [`Union`] arm (`prop_oneof!` helper).
pub fn union_arm<T, S>(strategy: S) -> Box<dyn DynStrategy<T>>
where
    S: Strategy<Value = T> + 'static,
{
    Box::new(strategy)
}

/// Weighted choice between strategies of one output type.
pub struct Union<T> {
    arms: Vec<(u32, Box<dyn DynStrategy<T>>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    /// Builds a union from weighted arms.
    pub fn new(arms: Vec<(u32, Box<dyn DynStrategy<T>>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total_weight = arms.iter().map(|(w, _)| *w as u64).sum::<u64>().max(1);
        Union { arms, total_weight }
    }
}

impl<T: fmt::Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.next_u64() % self.total_weight;
        for (weight, arm) in &self.arms {
            if pick < *weight as u64 {
                return arm.generate_dyn(rng);
            }
            pick -= *weight as u64;
        }
        self.arms[0].1.generate_dyn(rng)
    }
}

// --------------------------------------------------------------- arbitrary

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized + fmt::Debug {
    /// The strategy type returned by [`any`].
    type Strategy: Strategy<Value = Self>;
    /// The canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical full-domain strategy for a type.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Full-width strategy for a primitive type.
#[derive(Clone, Copy, Debug)]
pub struct AnyPrim<T>(PhantomData<T>);

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyPrim<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyPrim<$t>;
            fn arbitrary() -> Self::Strategy { AnyPrim(PhantomData) }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyPrim<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyPrim<bool>;
    fn arbitrary() -> Self::Strategy {
        AnyPrim(PhantomData)
    }
}

impl Strategy for AnyPrim<char> {
    type Value = char;
    fn generate(&self, rng: &mut TestRng) -> char {
        loop {
            if let Some(c) = char::from_u32((rng.next_u64() % 0xD800) as u32) {
                return c;
            }
        }
    }
}

impl Arbitrary for char {
    type Strategy = AnyPrim<char>;
    fn arbitrary() -> Self::Strategy {
        AnyPrim(PhantomData)
    }
}
