//! Regex-shaped string generation.
//!
//! Supports the subset of regex syntax this workspace's tests use as
//! generators: character classes with ranges and escapes, `\PC` ("any
//! non-control character"), counted repetition `{m}`/`{m,n}`, `+`, `*`,
//! `?`, and literal characters. Anchors, alternation and groups are not
//! supported.

use std::fmt;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Error produced for unsupported or malformed patterns.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "string strategy error: {}", self.0)
    }
}

impl std::error::Error for Error {}

#[derive(Clone, Debug)]
enum Atom {
    /// Inclusive character ranges (single chars are 1-wide ranges).
    Class(Vec<(char, char)>),
    /// Any non-control character (`\PC`).
    NotControl,
    /// A literal character.
    Literal(char),
}

#[derive(Clone, Debug)]
struct Piece {
    atom: Atom,
    min: u32,
    max: u32,
}

/// A compiled pattern usable as a string strategy.
#[derive(Clone, Debug)]
pub struct RegexGeneratorStrategy {
    pieces: Vec<Piece>,
}

/// Compiles a regex-shaped pattern into a string strategy.
pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
    compile(pattern)
}

pub(crate) fn compile(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pos = 0usize;
    let mut pieces = Vec::new();
    while pos < chars.len() {
        let atom = match chars[pos] {
            '[' => {
                let (ranges, next) = parse_class(&chars, pos + 1)?;
                pos = next;
                Atom::Class(ranges)
            }
            '\\' => {
                let (atom, next) = parse_escape(&chars, pos + 1)?;
                pos = next;
                atom
            }
            '.' => {
                pos += 1;
                Atom::NotControl
            }
            '(' | ')' | '|' | '^' | '$' => {
                return Err(Error(format!(
                    "unsupported regex construct `{}` in {pattern:?}",
                    chars[pos]
                )));
            }
            c => {
                pos += 1;
                Atom::Literal(c)
            }
        };
        let (min, max, next) = parse_repeat(&chars, pos)?;
        pos = next;
        pieces.push(Piece { atom, min, max });
    }
    Ok(RegexGeneratorStrategy { pieces })
}

fn parse_class(chars: &[char], mut pos: usize) -> Result<(Vec<(char, char)>, usize), Error> {
    let mut ranges = Vec::new();
    if chars.get(pos) == Some(&'^') {
        return Err(Error("negated classes are unsupported".into()));
    }
    loop {
        let c = match chars.get(pos) {
            None => return Err(Error("unterminated character class".into())),
            Some(']') => return Ok((ranges, pos + 1)),
            Some('\\') => {
                pos += 1;
                let esc = chars
                    .get(pos)
                    .ok_or_else(|| Error("trailing backslash in class".into()))?;
                pos += 1;
                unescape(*esc)
            }
            Some(&c) => {
                pos += 1;
                c
            }
        };
        // A `-` between two chars forms a range, unless it ends the class.
        if chars.get(pos) == Some(&'-') && chars.get(pos + 1).is_some_and(|n| *n != ']') {
            pos += 1;
            let hi = match chars.get(pos) {
                Some('\\') => {
                    pos += 1;
                    let esc = chars
                        .get(pos)
                        .ok_or_else(|| Error("trailing backslash in class".into()))?;
                    pos += 1;
                    unescape(*esc)
                }
                Some(&hi) => {
                    pos += 1;
                    hi
                }
                None => return Err(Error("unterminated range in class".into())),
            };
            if hi < c {
                return Err(Error(format!("inverted range `{c}-{hi}` in class")));
            }
            ranges.push((c, hi));
        } else {
            ranges.push((c, c));
        }
    }
}

fn parse_escape(chars: &[char], pos: usize) -> Result<(Atom, usize), Error> {
    match chars.get(pos) {
        Some('P') | Some('p') => {
            // Only the `\PC` ("not control") category is supported.
            match chars.get(pos + 1) {
                Some('C') => Ok((Atom::NotControl, pos + 2)),
                other => Err(Error(format!(
                    "unsupported unicode category escape `\\P{other:?}`"
                ))),
            }
        }
        Some(&c) => Ok((Atom::Literal(unescape(c)), pos + 1)),
        None => Err(Error("trailing backslash".into())),
    }
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        'r' => '\r',
        't' => '\t',
        '0' => '\0',
        other => other,
    }
}

fn parse_repeat(chars: &[char], pos: usize) -> Result<(u32, u32, usize), Error> {
    match chars.get(pos) {
        Some('{') => {
            let close = chars[pos..]
                .iter()
                .position(|&c| c == '}')
                .map(|off| pos + off)
                .ok_or_else(|| Error("unterminated repetition".into()))?;
            let body: String = chars[pos + 1..close].iter().collect();
            let (min, max) = match body.split_once(',') {
                Some((lo, hi)) => {
                    let lo = lo
                        .trim()
                        .parse::<u32>()
                        .map_err(|_| Error(format!("bad repetition `{body}`")))?;
                    let hi = hi
                        .trim()
                        .parse::<u32>()
                        .map_err(|_| Error(format!("bad repetition `{body}`")))?;
                    (lo, hi)
                }
                None => {
                    let n = body
                        .trim()
                        .parse::<u32>()
                        .map_err(|_| Error(format!("bad repetition `{body}`")))?;
                    (n, n)
                }
            };
            if max < min {
                return Err(Error(format!("inverted repetition `{body}`")));
            }
            Ok((min, max, close + 1))
        }
        Some('+') => Ok((1, 8, pos + 1)),
        Some('*') => Ok((0, 8, pos + 1)),
        Some('?') => Ok((0, 1, pos + 1)),
        _ => Ok((1, 1, pos)),
    }
}

/// Pool of non-ASCII, non-control characters mixed into `\PC` output.
const NON_ASCII_POOL: &[char] = &[
    'é', 'ß', 'Ω', 'λ', '→', '✓', '█', '日', '本', '語', '\u{00A0}', '\u{2028}', 'π', '𝛼',
];

impl RegexGeneratorStrategy {
    pub(crate) fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in &self.pieces {
            let span = (piece.max - piece.min + 1) as usize;
            let count = piece.min + rng.below(span) as u32;
            for _ in 0..count {
                match &piece.atom {
                    Atom::Literal(c) => out.push(*c),
                    Atom::Class(ranges) => out.push(pick_from_ranges(ranges, rng)),
                    Atom::NotControl => out.push(pick_not_control(rng)),
                }
            }
        }
        out
    }
}

fn pick_from_ranges(ranges: &[(char, char)], rng: &mut TestRng) -> char {
    let total: u64 = ranges
        .iter()
        .map(|(lo, hi)| (*hi as u64) - (*lo as u64) + 1)
        .sum();
    let mut pick = rng.next_u64() % total.max(1);
    for (lo, hi) in ranges {
        let width = (*hi as u64) - (*lo as u64) + 1;
        if pick < width {
            // Ranges in our patterns never straddle the surrogate gap.
            return char::from_u32(*lo as u32 + pick as u32).unwrap_or(*lo);
        }
        pick -= width;
    }
    ranges[0].0
}

fn pick_not_control(rng: &mut TestRng) -> char {
    if rng.next_u64().is_multiple_of(8) {
        NON_ASCII_POOL[rng.below(NON_ASCII_POOL.len())]
    } else {
        // Printable ASCII (space through tilde).
        char::from_u32(0x20 + rng.below(0x5F) as u32).unwrap_or(' ')
    }
}

impl Strategy for RegexGeneratorStrategy {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        RegexGeneratorStrategy::generate(self, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    fn sample(pattern: &str, seed: u64) -> String {
        compile(pattern).unwrap().generate(&mut TestRng::new(seed))
    }

    #[test]
    fn identifier_pattern() {
        for seed in 0..50 {
            let s = sample("[a-zA-Z_][a-zA-Z0-9_]{0,12}", seed);
            assert!(!s.is_empty() && s.len() <= 13, "{s:?}");
            let first = s.chars().next().unwrap();
            assert!(first.is_ascii_alphabetic() || first == '_', "{s:?}");
        }
    }

    #[test]
    fn class_with_escapes() {
        for seed in 0..100 {
            let s = sample("[ -~é\n\"\\\\]{0,16}", seed);
            for c in s.chars() {
                assert!(
                    (' '..='~').contains(&c) || c == 'é' || c == '\n',
                    "unexpected char {c:?}"
                );
            }
        }
    }

    #[test]
    fn not_control_excludes_controls() {
        for seed in 0..100 {
            let s = sample("\\PC{0,64}", seed);
            assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
            assert!(s.chars().count() <= 64);
        }
    }

    #[test]
    fn escaped_brackets_in_class() {
        for seed in 0..50 {
            let s = sample("[a-zA-Z0-9_\\[\\]]{1,8}", seed);
            assert!((1..=8).contains(&s.len()), "{s:?}");
            for c in s.chars() {
                assert!(c.is_ascii_alphanumeric() || "_[]".contains(c), "{s:?}");
            }
        }
    }

    #[test]
    fn exact_repetition_and_literals() {
        let s = sample("ab[0-9]{3}", 1);
        assert_eq!(&s[..2], "ab");
        assert_eq!(s.len(), 5);
    }
}
