//! Deterministic test runner and RNG.

use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::strategy::Strategy;

/// Runner configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to generate per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` generated inputs.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// SplitMix64 generator; deterministic per test name.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9e3779b97f4a7c15,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[0, bound)`.
    pub fn below(&mut self, bound: usize) -> usize {
        if bound == 0 {
            0
        } else {
            (self.next_u64() % bound as u64) as usize
        }
    }
}

fn fnv1a(name: &str) -> u64 {
    let mut hash = 0xcbf29ce484222325u64;
    for b in name.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

/// Runs `test` against `cfg.cases` inputs drawn from `strategy`. Panics with
/// the offending input's debug representation on the first failure.
pub fn run<S, F>(name: &str, cfg: &ProptestConfig, strategy: &S, mut test: F)
where
    S: Strategy,
    F: FnMut(S::Value),
{
    let mut rng = TestRng::new(fnv1a(name));
    for case in 0..cfg.cases {
        let value = strategy.generate(&mut rng);
        let repr = format!("{value:?}");
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| test(value))) {
            let cause = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "non-string panic payload".to_string()
            };
            panic!(
                "proptest `{name}` failed at case {case}/{}\ninput: {repr}\ncause: {cause}",
                cfg.cases
            );
        }
    }
}
