//! Offline subset implementation of the `rand` 0.8 API used by this
//! workspace: the `Rng`/`SeedableRng` traits, `rngs::StdRng`, uniform
//! `gen_range` over integer and float ranges, and `gen::<T>()` for common
//! primitives.
//!
//! `StdRng` is xoshiro256** seeded via SplitMix64 — not the real crate's
//! ChaCha12, so seeded streams differ from upstream `rand`, but all
//! workspace uses only need a deterministic, well-mixed stream.

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the generator.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Element types drawable uniformly from a range.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)` (or `[lo, hi]` when `inclusive`).
    fn sample_uniform<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R)
        -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                assert!(span > 0, "gen_range: empty range");
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                assert!(if inclusive { lo <= hi } else { lo < hi }, "gen_range: empty range");
                let unit = <$t as Standard>::sample(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

/// Ranges usable with [`Rng::gen_range`].
///
/// Blanket impls over [`SampleUniform`] keep the element type structurally
/// tied to the range's parameter, so `gen_range(0.0..1.0)` infers `f64`
/// exactly as with the real crate.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_uniform(lo, hi, true, rng)
    }
}

/// User-facing random-value methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from a range (`low..high` or `low..=high`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Draws a value of a samplable type.
    #[allow(clippy::should_implement_trait)]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds a generator from ambient entropy (time + address).
    fn from_entropy() -> Self {
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e3779b97f4a7c15);
        let stack = &t as *const _ as u64;
        Self::seed_from_u64(t ^ stack.rotate_left(32))
    }
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256** (not ChaCha12 as in the real
    /// crate — see the crate docs).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    Self::splitmix64(&mut sm),
                    Self::splitmix64(&mut sm),
                    Self::splitmix64(&mut sm),
                    Self::splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the workspace treats `SmallRng` and `StdRng` identically.
    pub type SmallRng = StdRng;
}

/// A freshly entropy-seeded [`rngs::StdRng`] (the real crate returns a
/// thread-local handle; a fresh generator is indistinguishable for our uses).
pub fn thread_rng() -> rngs::StdRng {
    rngs::StdRng::from_entropy()
}

/// One random value of a samplable type from an entropy-seeded generator.
pub fn random<T: Standard>() -> T {
    T::sample(&mut thread_rng())
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(30.0..600.0);
            assert!((30.0..600.0).contains(&f));
            let i = rng.gen_range(1..=40);
            assert!((1..=40).contains(&i));
            let neg = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&neg));
            let unit: f64 = rng.gen();
            assert!((0.0..1.0).contains(&unit));
        }
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = [0usize; 8];
        for _ in 0..8000 {
            counts[rng.gen_range(0..8usize)] += 1;
        }
        for c in counts {
            assert!((800..1200).contains(&c), "bucket count {c} out of range");
        }
    }
}
