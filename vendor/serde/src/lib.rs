//! Offline subset implementation of `serde`.
//!
//! Instead of the real crate's visitor-based zero-copy architecture, this
//! shim serializes through an owned tree ([`Content`]): `Serialize` lowers a
//! value into a `Content`, `Deserialize` rebuilds a value from one. Formats
//! (here: `serde_json`) convert between `Content` and their wire form. That
//! is slower than real serde but behaviourally equivalent for the
//! self-describing JSON round-trips this workspace performs.
//!
//! The derive macros (re-exported from `serde_derive`) support named-field
//! structs, enums with unit/newtype/struct variants, and the container
//! attribute `#[serde(from = "T", into = "T")]` — exactly the shapes used in
//! this repository.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data tree all (de)serialization passes through.
#[derive(Clone, Debug, PartialEq)]
pub enum Content {
    /// JSON null / `Option::None`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer (negative values land here).
    I64(i64),
    /// Unsigned integer (non-negative integers land here).
    U64(u64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence (arrays, tuples).
    Seq(Vec<Content>),
    /// Map with string keys, in insertion order.
    Map(Vec<(String, Content)>),
}

impl Content {
    /// Map accessor.
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Sequence accessor.
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// Short description of the variant for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::I64(_) | Content::U64(_) => "integer",
            Content::F64(_) => "float",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }
}

/// Deserialization error.
#[derive(Clone, Debug, PartialEq)]
pub struct DeError(pub String);

impl DeError {
    /// Builds an error from any displayable message.
    pub fn new(msg: impl fmt::Display) -> Self {
        DeError(msg.to_string())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Lowers `self` into a [`Content`] tree.
pub trait Serialize {
    /// Produces the data tree for this value.
    fn serialize(&self) -> Content;
}

/// Rebuilds `Self` from a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Parses the data tree into a value.
    fn deserialize(content: &Content) -> Result<Self, DeError>;
}

/// Looks up a struct field by name and deserializes it (derive helper).
pub fn de_field<T: Deserialize>(map: &[(String, Content)], key: &str) -> Result<T, DeError> {
    match map.iter().find(|(k, _)| k == key) {
        Some((_, v)) => T::deserialize(v),
        None => Err(DeError(format!("missing field `{key}`"))),
    }
}

// ---------------------------------------------------------------- primitives

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Content { Content::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn deserialize(c: &Content) -> Result<Self, DeError> {
                let v = match *c {
                    Content::I64(v) => v,
                    Content::U64(v) if v <= i64::MAX as u64 => v as i64,
                    ref other => {
                        return Err(DeError(format!(
                            "expected integer, found {}", other.kind()
                        )))
                    }
                };
                <$t>::try_from(v).map_err(|_| DeError(format!(
                    "integer {v} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Content { Content::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn deserialize(c: &Content) -> Result<Self, DeError> {
                let v = match *c {
                    Content::U64(v) => v,
                    Content::I64(v) if v >= 0 => v as u64,
                    ref other => {
                        return Err(DeError(format!(
                            "expected unsigned integer, found {}", other.kind()
                        )))
                    }
                };
                <$t>::try_from(v).map_err(|_| DeError(format!(
                    "integer {v} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn serialize(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        match *c {
            Content::F64(v) => Ok(v),
            Content::I64(v) => Ok(v as f64),
            Content::U64(v) => Ok(v as f64),
            // serde_json writes non-finite floats as null; read them back NaN.
            Content::Null => Ok(f64::NAN),
            ref other => Err(DeError(format!("expected float, found {}", other.kind()))),
        }
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Content {
        Content::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        f64::deserialize(c).map(|v| v as f32)
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Bool(b) => Ok(*b),
            other => Err(DeError(format!("expected bool, found {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            other => Err(DeError(format!("expected string, found {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        let s = String::deserialize(c)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(ch), None) => Ok(ch),
            _ => Err(DeError(format!("expected single char, found {s:?}"))),
        }
    }
}

// ------------------------------------------------------------- containers

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Content {
        match self {
            Some(v) => v.serialize(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Seq(items) => items.iter().map(T::deserialize).collect(),
            other => Err(DeError(format!("expected sequence, found {}", other.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Content {
                Content::Seq(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(c: &Content) -> Result<Self, DeError> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                let seq = c.as_seq().ok_or_else(|| {
                    DeError(format!("expected {LEN}-tuple, found {}", c.kind()))
                })?;
                if seq.len() != LEN {
                    return Err(DeError(format!(
                        "expected {LEN}-tuple, found sequence of {}", seq.len()
                    )));
                }
                Ok(($($name::deserialize(&seq[$idx])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

// String-keyed maps only: `K: AsRef<str>` also covers `&String`/`&str`
// keys, which show up when serializing borrowed map views.
impl<K: AsRef<str> + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.as_ref().to_string(), v.serialize()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
                .collect(),
            other => Err(DeError(format!("expected map, found {}", other.kind()))),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize(&self) -> Content {
        // Sort for deterministic output.
        let mut entries: Vec<_> = self.iter().map(|(k, v)| (k.clone(), v.serialize())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Content::Map(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
                .collect(),
            other => Err(DeError(format!("expected map, found {}", other.kind()))),
        }
    }
}

// ----------------------------------------------------- pointer delegation

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Content {
        (**self).serialize()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize(&self) -> Content {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        T::deserialize(c).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn serialize(&self) -> Content {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Arc<T> {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        T::deserialize(c).map(Arc::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for Rc<T> {
    fn serialize(&self) -> Content {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for std::borrow::Cow<'_, T>
where
    T: Clone,
{
    fn serialize(&self) -> Content {
        self.as_ref().serialize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(i64::deserialize(&42i64.serialize()), Ok(42));
        assert_eq!(u64::deserialize(&7u64.serialize()), Ok(7));
        assert_eq!(String::deserialize(&"x".to_string().serialize()), Ok("x".into()));
        assert_eq!(Option::<i64>::deserialize(&Content::Null), Ok(None));
        assert_eq!(
            Vec::<i64>::deserialize(&vec![1i64, 2].serialize()),
            Ok(vec![1, 2])
        );
    }

    #[test]
    fn cross_width_integers() {
        // JSON parsing yields U64 for non-negative numbers; i64 must accept.
        assert_eq!(i64::deserialize(&Content::U64(5)), Ok(5));
        assert_eq!(u8::deserialize(&Content::I64(255)), Ok(255));
        assert!(u8::deserialize(&Content::I64(-1)).is_err());
    }

    #[test]
    fn tuples_and_maps() {
        let pair = ("a".to_string(), 2i64);
        assert_eq!(<(String, i64)>::deserialize(&pair.serialize()), Ok(pair));
        let mut m = BTreeMap::new();
        m.insert("k".to_string(), 9i64);
        assert_eq!(BTreeMap::<String, i64>::deserialize(&m.serialize()), Ok(m));
    }
}
