//! Offline subset implementation of serde's derive macros.
//!
//! Parses the item token stream by hand (no `syn`/`quote` in this offline
//! build) and emits impls of the vendored `serde::Serialize` /
//! `serde::Deserialize` tree-based traits.
//!
//! Supported shapes — exactly what this workspace derives:
//! - structs with named fields (externally a JSON object)
//! - enums with unit variants (`"Variant"`), newtype variants
//!   (`{"Variant": value}`) and struct variants (`{"Variant": {..}}`)
//! - the container attribute `#[serde(from = "T", into = "T")]`
//!
//! Anything else produces a `compile_error!` naming the unsupported shape.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum ItemKind {
    Struct(Vec<String>),
    Enum(Vec<(String, VariantKind)>),
}

enum VariantKind {
    Unit,
    Newtype,
    Struct(Vec<String>),
}

struct Item {
    name: String,
    kind: ItemKind,
    from_ty: Option<String>,
    into_ty: Option<String>,
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, true)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, false)
}

fn expand(input: TokenStream, ser: bool) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => return compile_error(&msg),
    };
    let code = if ser {
        gen_serialize(&item)
    } else {
        gen_deserialize(&item)
    };
    match code.parse() {
        Ok(ts) => ts,
        Err(e) => compile_error(&format!("serde_derive internal error: {e}")),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

// ------------------------------------------------------------------ parsing

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut tokens = input.into_iter().peekable();
    let mut from_ty = None;
    let mut into_ty = None;
    let keyword = loop {
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.next() {
                    parse_serde_attr(&g, &mut from_ty, &mut into_ty)?;
                }
            }
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    break s;
                }
                // visibility / other modifiers: skip
            }
            Some(_) => {}
            None => return Err("serde derive: no struct or enum found".into()),
        }
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde derive: missing item name".into()),
    };
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!("serde derive: generic type `{name}` is unsupported"));
    }
    let body = loop {
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                return Err(format!("serde derive: tuple struct `{name}` is unsupported"));
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                return Err(format!("serde derive: unit struct `{name}` is unsupported"));
            }
            Some(_) => {}
            None => return Err(format!("serde derive: missing body for `{name}`")),
        }
    };
    let kind = if keyword == "struct" {
        ItemKind::Struct(parse_named_fields(body.stream())?)
    } else {
        ItemKind::Enum(parse_variants(body.stream())?)
    };
    Ok(Item {
        name,
        kind,
        from_ty,
        into_ty,
    })
}

fn parse_serde_attr(
    group: &proc_macro::Group,
    from_ty: &mut Option<String>,
    into_ty: &mut Option<String>,
) -> Result<(), String> {
    // Expect `[serde(...)]`; everything else (doc comments etc.) is skipped.
    let mut inner = group.stream().into_iter();
    match inner.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return Ok(()),
    }
    let Some(TokenTree::Group(args)) = inner.next() else {
        return Ok(());
    };
    let mut toks = args.stream().into_iter().peekable();
    while let Some(tt) = toks.next() {
        let TokenTree::Ident(key) = tt else { continue };
        let key = key.to_string();
        // consume `= "Type"`
        let mut value = None;
        if matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            toks.next();
            if let Some(TokenTree::Literal(lit)) = toks.next() {
                let s = lit.to_string();
                value = Some(s.trim_matches('"').to_string());
            }
        }
        match (key.as_str(), value) {
            ("from", Some(v)) => *from_ty = Some(v),
            ("into", Some(v)) => *into_ty = Some(v),
            ("from" | "into", None) => {
                return Err("serde derive: malformed from/into attribute".into())
            }
            (other, _) => {
                return Err(format!("serde derive: unsupported attribute `{other}`"));
            }
        }
    }
    Ok(())
}

/// Parses `ident: Type, ...` returning field names. Tracks `<`/`>` depth so
/// commas inside generic arguments don't split fields.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Skip attributes and visibility before the field name.
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    tokens.next(); // the [...] group
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    tokens.next();
                    if matches!(tokens.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                    {
                        tokens.next();
                    }
                }
                _ => break,
            }
        }
        let Some(tt) = tokens.next() else { break };
        let TokenTree::Ident(name) = tt else {
            return Err(format!("serde derive: expected field name, found `{tt}`"));
        };
        fields.push(name.to_string());
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => {
                return Err(format!(
                    "serde derive: expected `:` after field `{name}`, found {other:?}"
                ))
            }
        }
        // Consume the type: everything until a comma at angle depth 0.
        let mut depth = 0i32;
        loop {
            match tokens.peek() {
                None => break,
                Some(TokenTree::Punct(p)) => {
                    let c = p.as_char();
                    if c == '<' {
                        depth += 1;
                    } else if c == '>' {
                        depth -= 1;
                    } else if c == ',' && depth == 0 {
                        tokens.next();
                        break;
                    }
                    tokens.next();
                }
                Some(_) => {
                    tokens.next();
                }
            }
        }
    }
    Ok(fields)
}

fn parse_variants(stream: TokenStream) -> Result<Vec<(String, VariantKind)>, String> {
    let mut variants = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Skip attributes before the variant name.
        while matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            tokens.next();
            tokens.next();
        }
        let Some(tt) = tokens.next() else { break };
        let TokenTree::Ident(name) = tt else {
            return Err(format!("serde derive: expected variant name, found `{tt}`"));
        };
        let name = name.to_string();
        let kind = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let payload = g.stream();
                tokens.next();
                if count_top_level_commas(payload) > 0 {
                    return Err(format!(
                        "serde derive: multi-field tuple variant `{name}` is unsupported"
                    ));
                }
                VariantKind::Newtype
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                tokens.next();
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        variants.push((name, kind));
        // Consume trailing comma if present.
        if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            tokens.next();
        }
    }
    Ok(variants)
}

/// Counts commas at angle-bracket depth 0, ignoring a single trailing comma.
fn count_top_level_commas(stream: TokenStream) -> usize {
    let tokens: Vec<_> = stream.into_iter().collect();
    let mut depth = 0i32;
    let mut commas = 0usize;
    for (i, tt) in tokens.iter().enumerate() {
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 && i + 1 < tokens.len() => commas += 1,
                _ => {}
            }
        }
    }
    commas
}

// ------------------------------------------------------------------ codegen

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    if let Some(into_ty) = &item.into_ty {
        return format!(
            "impl ::serde::Serialize for {name} {{\n\
             fn serialize(&self) -> ::serde::Content {{\n\
             let __converted: {into_ty} = ::core::clone::Clone::clone(self).into();\n\
             ::serde::Serialize::serialize(&__converted)\n\
             }}\n}}\n"
        );
    }
    let body = match &item.kind {
        ItemKind::Struct(fields) => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::serialize(&self.{f})),"
                    )
                })
                .collect();
            format!("::serde::Content::Map(::std::vec![{entries}])")
        }
        ItemKind::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|(v, kind)| match kind {
                    VariantKind::Unit => format!(
                        "{name}::{v} => \
                         ::serde::Content::Str(::std::string::String::from({v:?})),"
                    ),
                    VariantKind::Newtype => format!(
                        "{name}::{v}(__value) => \
                         ::serde::Content::Map(::std::vec![(\
                         ::std::string::String::from({v:?}), \
                         ::serde::Serialize::serialize(__value))]),"
                    ),
                    VariantKind::Struct(fields) => {
                        let bindings = fields.join(", ");
                        let entries: String = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from({f:?}), \
                                     ::serde::Serialize::serialize({f})),"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {bindings} }} => \
                             ::serde::Content::Map(::std::vec![(\
                             ::std::string::String::from({v:?}), \
                             ::serde::Content::Map(::std::vec![{entries}]))]),"
                        )
                    }
                })
                .collect();
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize(&self) -> ::serde::Content {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    if let Some(from_ty) = &item.from_ty {
        return format!(
            "impl ::serde::Deserialize for {name} {{\n\
             fn deserialize(__c: &::serde::Content) \
             -> ::core::result::Result<Self, ::serde::DeError> {{\n\
             let __converted: {from_ty} = ::serde::Deserialize::deserialize(__c)?;\n\
             ::core::result::Result::Ok(::core::convert::Into::into(__converted))\n\
             }}\n}}\n"
        );
    }
    let body = match &item.kind {
        ItemKind::Struct(fields) => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::de_field(__m, {f:?})?,"))
                .collect();
            format!(
                "let __m = __c.as_map().ok_or_else(|| ::serde::DeError::new(\
                 ::std::format!(\"expected map for {name}, found {{}}\", __c.kind())))?;\n\
                 ::core::result::Result::Ok({name} {{ {inits} }})"
            )
        }
        ItemKind::Enum(variants) => {
            let unit_arms: String = variants
                .iter()
                .filter(|(_, k)| matches!(k, VariantKind::Unit))
                .map(|(v, _)| format!("{v:?} => ::core::result::Result::Ok({name}::{v}),"))
                .collect();
            let payload_arms: String = variants
                .iter()
                .filter_map(|(v, kind)| match kind {
                    VariantKind::Unit => None,
                    VariantKind::Newtype => Some(format!(
                        "{v:?} => ::core::result::Result::Ok(\
                         {name}::{v}(::serde::Deserialize::deserialize(__value)?)),"
                    )),
                    VariantKind::Struct(fields) => {
                        let inits: String = fields
                            .iter()
                            .map(|f| format!("{f}: ::serde::de_field(__m, {f:?})?,"))
                            .collect();
                        Some(format!(
                            "{v:?} => {{\n\
                             let __m = __value.as_map().ok_or_else(|| \
                             ::serde::DeError::new(\"expected map payload for {name}::{v}\"))?;\n\
                             ::core::result::Result::Ok({name}::{v} {{ {inits} }})\n}},"
                        ))
                    }
                })
                .collect();
            format!(
                "match __c {{\n\
                 ::serde::Content::Str(__s) => match __s.as_str() {{\n\
                 {unit_arms}\n\
                 __other => ::core::result::Result::Err(::serde::DeError::new(\
                 ::std::format!(\"unknown variant `{{}}` for {name}\", __other))),\n\
                 }},\n\
                 ::serde::Content::Map(__entries) if __entries.len() == 1 => {{\n\
                 let (__key, __value) = &__entries[0];\n\
                 match __key.as_str() {{\n\
                 {payload_arms}\n\
                 __other => ::core::result::Result::Err(::serde::DeError::new(\
                 ::std::format!(\"unknown variant `{{}}` for {name}\", __other))),\n\
                 }}\n\
                 }},\n\
                 __other => ::core::result::Result::Err(::serde::DeError::new(\
                 ::std::format!(\"expected variant of {name}, found {{}}\", __other.kind()))),\n\
                 }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn deserialize(__c: &::serde::Content) \
         -> ::core::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n}}\n"
    )
}
