//! Offline subset implementation of `serde_json`: a JSON document model
//! ([`Value`]), a strict parser, a compact printer, the [`json!`] macro and
//! the `to_string`/`to_vec`/`from_str`/`from_slice` entry points, bridged
//! through the vendored `serde`'s [`serde::Content`] tree.
//!
//! Object keys are stored sorted (`BTreeMap`) rather than in insertion
//! order; nothing in this workspace depends on key order.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Content, DeError};

mod parse;
mod print;

pub use parse::Error as ParseError;

/// Object representation (sorted keys).
pub type Map<K, V> = BTreeMap<K, V>;

/// A JSON number: signed, unsigned or floating point.
///
/// Matching real `serde_json` semantics, integer numbers compare equal
/// across signedness when numerically equal, while floats only compare
/// equal to floats.
#[derive(Clone, Copy, Debug)]
pub enum Number {
    /// Negative integers.
    I(i64),
    /// Non-negative integers.
    U(u64),
    /// Everything with a fraction or exponent.
    F(f64),
}

impl Number {
    /// Signed accessor.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::I(v) => Some(v),
            Number::U(v) => i64::try_from(v).ok(),
            Number::F(_) => None,
        }
    }

    /// Unsigned accessor.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::I(v) => u64::try_from(v).ok(),
            Number::U(v) => Some(v),
            Number::F(_) => None,
        }
    }

    /// Lossy float accessor (always succeeds).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Number::I(v) => Some(v as f64),
            Number::U(v) => Some(v as f64),
            Number::F(v) => Some(v),
        }
    }

    /// True if the number is a float.
    pub fn is_f64(&self) -> bool {
        matches!(self, Number::F(_))
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (*self, *other) {
            (Number::F(a), Number::F(b)) => a == b,
            (Number::F(_), _) | (_, Number::F(_)) => false,
            (a, b) => match (a.as_i64(), b.as_i64(), a.as_u64(), b.as_u64()) {
                (Some(x), Some(y), _, _) => x == y,
                (_, _, Some(x), Some(y)) => x == y,
                _ => false,
            },
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::I(v) => write!(f, "{v}"),
            Number::U(v) => write!(f, "{v}"),
            Number::F(v) if v.is_finite() => write!(f, "{v:?}"),
            Number::F(_) => write!(f, "null"),
        }
    }
}

/// A JSON document.
#[derive(Clone, Debug, PartialEq, Default)]
pub enum Value {
    /// `null`
    #[default]
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (sorted keys).
    Object(Map<String, Value>),
}

static NULL: Value = Value::Null;

impl Value {
    /// Member access by key or array index; `None` on kind mismatch or miss.
    pub fn get<I: IndexKey>(&self, index: I) -> Option<&Value> {
        index.index_into(self)
    }

    /// String accessor.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Bool accessor.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Signed-integer accessor.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// Unsigned-integer accessor.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// Float accessor (integers coerce).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    /// Array accessor.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Object accessor.
    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// True for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&print::to_json_string(self))
    }
}

/// Keys usable with [`Value::get`] and `value[key]`.
pub trait IndexKey {
    /// Resolves the key against a value.
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value>;
}

impl IndexKey for str {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value> {
        v.as_object().and_then(|o| o.get(self))
    }
}

impl IndexKey for &str {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value> {
        (*self).index_into(v)
    }
}

impl IndexKey for String {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value> {
        self.as_str().index_into(v)
    }
}

impl IndexKey for usize {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value> {
        v.as_array().and_then(|a| a.get(*self))
    }
}

impl<I: IndexKey> std::ops::Index<I> for Value {
    type Output = Value;
    fn index(&self, index: I) -> &Value {
        index.index_into(self).unwrap_or(&NULL)
    }
}

// ----------------------------------------------------------- conversions

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::String(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::String(v.to_string())
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Number(Number::F(v))
    }
}
impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::Number(Number::F(v as f64))
    }
}
impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}
impl From<Map<String, Value>> for Value {
    fn from(v: Map<String, Value>) -> Self {
        Value::Object(v)
    }
}

macro_rules! from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Self {
                let v = v as i64;
                if v >= 0 { Value::Number(Number::U(v as u64)) }
                else { Value::Number(Number::I(v)) }
            }
        }
    )*};
}
from_signed!(i8, i16, i32, i64, isize);

macro_rules! from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Self { Value::Number(Number::U(v as u64)) }
        }
    )*};
}
from_unsigned!(u8, u16, u32, u64, usize);

// -------------------------------------------------------- eq with scalars

macro_rules! partial_eq_scalar {
    ($($t:ty => $conv:expr),* $(,)?) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                #[allow(clippy::redundant_closure_call)]
                { self == &($conv)(other.clone()) }
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
        // `&Value == $t` for non-reference scalars; `&Value == &str` is
        // already covered by std's `PartialEq<&B> for &A` blanket impl via
        // `PartialEq<str> for Value` below.
        impl PartialEq<$t> for &Value {
            fn eq(&self, other: &$t) -> bool {
                *self == other
            }
        }
    )*};
}
partial_eq_scalar! {
    bool => Value::from,
    i32 => Value::from,
    i64 => Value::from,
    u32 => Value::from,
    u64 => Value::from,
    usize => Value::from,
    f64 => Value::from,
    String => Value::from,
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<Value> for str {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

// --------------------------------------------------------- serde bridge

impl serde::Serialize for Value {
    fn serialize(&self) -> Content {
        match self {
            Value::Null => Content::Null,
            Value::Bool(b) => Content::Bool(*b),
            Value::Number(Number::I(v)) => Content::I64(*v),
            Value::Number(Number::U(v)) => Content::U64(*v),
            Value::Number(Number::F(v)) => Content::F64(*v),
            Value::String(s) => Content::Str(s.clone()),
            Value::Array(items) => {
                Content::Seq(items.iter().map(serde::Serialize::serialize).collect())
            }
            Value::Object(entries) => Content::Map(
                entries
                    .iter()
                    .map(|(k, v)| (k.clone(), serde::Serialize::serialize(v)))
                    .collect(),
            ),
        }
    }
}

impl serde::Deserialize for Value {
    fn deserialize(content: &Content) -> Result<Self, DeError> {
        Ok(content_to_value(content))
    }
}

fn content_to_value(content: &Content) -> Value {
    match content {
        Content::Null => Value::Null,
        Content::Bool(b) => Value::Bool(*b),
        Content::I64(v) => {
            if *v >= 0 {
                Value::Number(Number::U(*v as u64))
            } else {
                Value::Number(Number::I(*v))
            }
        }
        Content::U64(v) => Value::Number(Number::U(*v)),
        Content::F64(v) => Value::Number(Number::F(*v)),
        Content::Str(s) => Value::String(s.clone()),
        Content::Seq(items) => Value::Array(items.iter().map(content_to_value).collect()),
        Content::Map(entries) => Value::Object(
            entries
                .iter()
                .map(|(k, v)| (k.clone(), content_to_value(v)))
                .collect(),
        ),
    }
}

/// Converts any serializable value into a [`Value`].
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    content_to_value(&value.serialize())
}

/// Converts a [`Value`] into any deserializable type.
pub fn from_value<T: serde::Deserialize>(value: &Value) -> Result<T, Error> {
    T::deserialize(&serde::Serialize::serialize(value)).map_err(|e| Error(e.to_string()))
}

// ----------------------------------------------------------- entry points

/// (De)serialization error.
#[derive(Clone, Debug, PartialEq)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes a value to compact JSON text.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(print::to_json_string(&to_value(value)))
}

/// Serializes a value to pretty-printed JSON text.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(print::to_json_string_pretty(&to_value(value)))
}

/// Serializes a value to compact JSON bytes.
pub fn to_vec<T: serde::Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Parses JSON text into any deserializable type.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse::parse(text).map_err(|e| Error(e.to_string()))?;
    from_value(&value)
}

/// Parses JSON bytes into any deserializable type.
pub fn from_slice<T: serde::Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let text = std::str::from_utf8(bytes).map_err(|e| Error(format!("invalid utf-8: {e}")))?;
    from_str(text)
}

/// Builds a [`Value`] from JSON-looking syntax with interpolated
/// expressions, like the real `serde_json::json!`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($tt:tt)* ]) => { $crate::json_internal!(@array [] $($tt)*) };
    ({ $($tt:tt)* }) => {{
        #[allow(unused_mut)]
        let mut __m = $crate::Map::new();
        $crate::json_internal!(@object __m () $($tt)*);
        $crate::Value::Object(__m)
    }};
    ($other:expr) => { $crate::to_value(&$other) };
}

/// Implementation detail of [`json!`]; do not use directly.
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    // ----- arrays: accumulate built elements, munch one element at a time
    (@array [$($elems:expr,)*]) => {
        $crate::Value::Array(::std::vec![$($elems),*])
    };
    (@array [$($elems:expr,)*] null $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@array [$($elems,)* $crate::Value::Null,] $($($rest)*)?)
    };
    (@array [$($elems:expr,)*] [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json!([$($inner)*]),] $($($rest)*)?)
    };
    (@array [$($elems:expr,)*] { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json!({$($inner)*}),] $($($rest)*)?)
    };
    (@array [$($elems:expr,)*] $next:expr $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@array [$($elems,)* $crate::to_value(&$next),] $($($rest)*)?)
    };
    // ----- objects: insert into the map binding, munch one entry at a time
    (@object $m:ident ()) => {};
    (@object $m:ident () $key:literal : null $(, $($rest:tt)*)?) => {
        $m.insert($key.to_string(), $crate::Value::Null);
        $crate::json_internal!(@object $m () $($($rest)*)?);
    };
    (@object $m:ident () $key:literal : [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $m.insert($key.to_string(), $crate::json!([$($inner)*]));
        $crate::json_internal!(@object $m () $($($rest)*)?);
    };
    (@object $m:ident () $key:literal : { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $m.insert($key.to_string(), $crate::json!({$($inner)*}));
        $crate::json_internal!(@object $m () $($($rest)*)?);
    };
    (@object $m:ident () $key:literal : $value:expr $(, $($rest:tt)*)?) => {
        $m.insert($key.to_string(), $crate::to_value(&$value));
        $crate::json_internal!(@object $m () $($($rest)*)?);
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_shapes() {
        let v = json!({
            "status": "success",
            "count": 3,
            "ratio": 0.5,
            "items": [1, "two", null, {"nested": true}],
            "none": null,
        });
        assert_eq!(v["status"], "success");
        assert_eq!(v["count"], 3);
        assert_eq!(v["ratio"], 0.5);
        assert_eq!(v["items"].as_array().unwrap().len(), 4);
        assert_eq!(v["items"][3]["nested"], true);
        assert!(v["none"].is_null());
        assert!(v["missing"].is_null());
    }

    #[test]
    fn roundtrip_via_text() {
        let v = json!({"a": [1, 2.5, "x\n\"y\\"], "b": {"c": -7}});
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn numbers_compare_like_serde_json() {
        let i: Value = from_str("2").unwrap();
        assert_eq!(i, 2);
        assert_eq!(i, 2u64);
        // Floats never equal integers, matching real serde_json.
        assert_ne!(i, json!(2.0));
        assert_eq!(json!(2.0), 2.0);
    }

    #[test]
    fn parse_escapes_and_unicode() {
        let v: Value = from_str(r#""a\u00e9\n\t\"\\b\u0041""#).unwrap();
        assert_eq!(v, "aé\n\t\"\\bA");
        let round = to_string(&v).unwrap();
        let back: Value = from_str(&round).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }

    #[test]
    fn non_finite_floats_print_null() {
        assert_eq!(to_string(&json!(f64::NAN)).unwrap(), "null");
        assert_eq!(to_string(&json!(f64::INFINITY)).unwrap(), "null");
    }
}
