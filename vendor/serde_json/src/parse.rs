//! Strict recursive-descent JSON parser.

use std::fmt;

use crate::{Map, Number, Value};

/// Parse error with byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    msg: String,
    offset: usize,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.offset)
    }
}

impl std::error::Error for Error {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

const MAX_DEPTH: usize = 128;

pub fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl fmt::Display) -> Error {
        Error {
            msg: msg.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, lit: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(format!("expected `{lit}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(self.err("recursion limit exceeded"));
        }
        match self.peek() {
            Some(b'n') => self.expect("null").map(|()| Value::Null),
            Some(b't') => self.expect("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.expect("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, Error> {
        self.pos += 1; // consume '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, Error> {
        self.pos += 1; // consume '{'
        let mut entries = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected string key in object"));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.err("expected `:` after object key"));
            }
            self.pos += 1;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            entries.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.pos += 1; // consume '"'
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let unit = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&unit) {
                                // High surrogate: require a low surrogate.
                                self.expect("\\u")
                                    .map_err(|_| self.err("unpaired surrogate"))?;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let combined = 0x10000
                                    + ((unit as u32 - 0xD800) << 10)
                                    + (low as u32 - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(unit as u32)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?
                            };
                            out.push(ch);
                        }
                        other => {
                            return Err(
                                self.err(format!("invalid escape `\\{}`", other as char))
                            )
                        }
                    }
                }
                _ if c < 0x20 => return Err(self.err("control character in string")),
                _ => {
                    // Copy the full UTF-8 sequence starting at c.
                    let start = self.pos - 1;
                    let len = utf8_len(c);
                    let end = start + len;
                    if end > self.bytes.len() {
                        return Err(self.err("truncated utf-8 sequence"));
                    }
                    match std::str::from_utf8(&self.bytes[start..end]) {
                        Ok(s) => out.push_str(s),
                        Err(_) => return Err(self.err("invalid utf-8 in string")),
                    }
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid unicode escape"))?;
        let unit =
            u16::from_str_radix(hex, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos += 4;
        Ok(unit)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::F(f)))
            .map_err(|_| self.err(format!("invalid number `{text}`")))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}
