//! Compact and pretty JSON printers.

use crate::Value;

pub fn to_json_string(value: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, value, None, 0);
    out
}

pub fn to_json_string_pretty(value: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, value, Some("  "), 0);
    out
}

fn write_value(out: &mut String, value: &Value, indent: Option<&str>, level: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_escaped(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<&str>, level: usize) {
    if let Some(pad) = indent {
        out.push('\n');
        for _ in 0..level {
            out.push_str(pad);
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
